// SoA/SIMD lockdown suite (PR 10).
//
// The fast kernel's candidate storage is structure-of-arrays
// (core/soa.hpp) and its hot loops are the lane sweeps of
// core/soa_sweeps.hpp, compiled with `#pragma omp simd` when the build
// enables it. Three contracts pin that refactor down:
//
//  * Differential: the SoA fast kernel must stay bit-identical to the
//    reference (seed) kernel — same slack bits, placements, per_count
//    table, legacy DP counters — across 204 generated nets x random
//    libraries of size {1, 8, 64} x inverting fractions {0, 0.5} x the
//    full six-variant option cycle. Every fast run keeps check_invariants
//    on, so the sweep doubles as the property corpus for the (load asc,
//    slack desc) staircase invariant over every SoA block.
//  * Self-differential: the same workload with VgOptions::simd = Off and
//    = Auto in ONE binary must produce byte-identical serialized results
//    (slack bits, plans, wire widths) and equal deterministic counters —
//    including the vg.soa_* family, which is a pure function of the input.
//    In a build configured with NBUF_SIMD=off both runs take the scalar
//    path and the test degenerates to determinism, which is still a valid
//    (weaker) reading of the contract.
//  * Tail loops: a fixed corpus (tests/data/soa/, lengths 0, 1 and
//    lane-1 / lane / lane+1 for every lane width up to AVX-512) driven
//    straight through each sweep of core/soa_sweeps.hpp in scalar and in
//    vector mode, compared lane-by-lane with memcmp. A masked epilogue or
//    alignment bug shows up here as a one-element bit difference.
//
// Everything is seeded; there is no run-to-run variation.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/random_library.hpp"
#include "common/test_nets.hpp"
#include "common/vg_compare.hpp"
#include "core/soa.hpp"
#include "core/soa_sweeps.hpp"
#include "core/vanginneken.hpp"
#include "core/vg_kernel.hpp"
#include "lib/wire.hpp"
#include "netgen/netgen.hpp"
#include "seg/segment.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace {

using namespace nbuf;
using namespace nbuf::units;
namespace soa = core::detail::soa;
using test::expect_identical;

core::VgResult run_kernel(const rct::RoutingTree& segmented,
                          const lib::BufferLibrary& library,
                          core::VgOptions opt, core::VgKernel kernel,
                          core::SimdMode simd = core::SimdMode::Auto) {
  opt.kernel = kernel;
  opt.simd = simd;
  return core::optimize(segmented, library, opt);
}

// The test_vg_kernel option cycle, parameterized on the library size so
// the buffer-cost variant stays valid for every fuzzed library. Invariant
// checking stays on everywhere: the fast kernel re-verifies every SoA
// block after each DP step.
core::VgOptions variant(std::size_t which, std::size_t lib_size) {
  core::VgOptions opt;
  opt.check_invariants = true;
  switch (which % 6) {
    case 0:  // BuffOpt shape: noise-constrained, best slack
      break;
    case 1:  // DelayOpt baseline
      opt.noise_constraints = false;
      break;
    case 2:  // Problem 3 objective
      opt.objective = core::VgObjective::MinBuffersMeetingConstraints;
      break;
    case 3:  // simultaneous wire sizing (the sorting fork path)
      opt.wire_widths = lib::default_wire_widths();
      break;
    case 4:  // Lillis buffer costs: bucket index = total cost
      opt.buffer_costs.assign(lib_size, 1);
      for (std::size_t i = 0; i < opt.buffer_costs.size(); i += 2)
        opt.buffer_costs[i] = 2;
      break;
    case 5:  // slew-limited, delay-only
      opt.noise_constraints = false;
      opt.max_slew = 150.0 * ps;
  }
  return opt;
}

// The fuzzed library axis of this suite: {1, 8, 64} x {all-buffer,
// half-inverting}, seeded per combo.
struct LibCombo {
  std::size_t size;
  double fraction;
};
constexpr LibCombo kCombos[] = {{1, 0.0},  {1, 0.5},  {8, 0.0},
                                {8, 0.5},  {64, 0.0}, {64, 0.5}};

lib::BufferLibrary combo_library(std::size_t idx) {
  return test::random_library(0x50A0 + 977 * idx, kCombos[idx].size,
                              kCombos[idx].fraction);
}

std::vector<netgen::GeneratedNet> fuzz_nets() {
  netgen::TestbenchOptions gen;
  gen.net_count = 204;
  gen.seed = 52807;
  return netgen::generate_testbench(lib::default_library(), gen);
}

// ---------------------------------------------------------------------------
// Byte serialization of a VgResult: every deterministic field, doubles by
// bit pattern (memcpy, not operator==, so a -0.0 vs +0.0 or NaN-payload
// difference cannot hide). The scalar-vs-SIMD contract is equality of
// these strings.

void put_u64(std::string& s, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) s.push_back(static_cast<char>(v >> (8 * i)));
}

void put_bits(std::string& s, double d) {
  std::uint64_t b = 0;
  std::memcpy(&b, &d, sizeof b);
  put_u64(s, b);
}

std::string serialize(const core::VgResult& r) {
  std::string s;
  s.push_back(r.feasible ? 1 : 0);
  s.push_back(r.timing_met ? 1 : 0);
  put_bits(s, r.slack);
  put_u64(s, r.buffer_count);
  for (const auto& [node, type] : test::sorted_entries(r.buffers)) {
    put_u64(s, node);
    put_u64(s, type);
  }
  put_u64(s, r.wire_widths.size());
  for (const auto& w : r.wire_widths) {
    put_u64(s, w.node.value());
    put_u64(s, w.width);
  }
  put_u64(s, r.per_count.size());
  for (const auto& cb : r.per_count) {
    put_u64(s, cb.count);
    put_bits(s, cb.slack);
    put_bits(s, cb.noise_slack);
    s.push_back(cb.noise_ok ? 1 : 0);
    put_u64(s, cb.plan.size());
    for (const auto& p : cb.plan) {
      put_u64(s, p.node.value());
      put_bits(s, p.dist_above);
      put_u64(s, p.type.value());
    }
    put_u64(s, cb.wires.size());
    for (const auto& w : cb.wires) {
      put_u64(s, w.node.value());
      put_u64(s, w.width);
    }
  }
  return s;
}

// ---------------------------------------------------------------------------
// Corpus plumbing for the tail-loop sweeps.

core::SoAList load_corpus(std::size_t len) {
  const std::string path =
      std::string(NBUF_SOA_DATA_DIR) + "/len" + std::to_string(len) + ".txt";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing corpus file " << path;
  core::SoAList list;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream row(line);
    double load = 0.0, slack = 0.0, current = 0.0, ns = 0.0, dhat = 0.0;
    if (!(row >> load)) continue;  // blank or '#' comment line
    row >> slack >> current >> ns >> dhat;
    list.push_back(load, slack, current, ns, dhat, core::kNullPlan);
  }
  EXPECT_EQ(list.size(), len) << path;
  return list;
}

core::SoAList copy_list(const core::SoAList& src) {
  core::SoAList dst;
  for (std::size_t i = 0; i < src.size(); ++i)
    dst.push_back(src.load()[i], src.slack()[i], src.current()[i],
                  src.noise_slack()[i], src.dhat()[i], src.plan()[i]);
  return dst;
}

// Lane-by-lane bitwise equality over the first n elements of both lists.
void expect_lanes_identical(const core::SoAList& a, const core::SoAList& b) {
  ASSERT_EQ(a.size(), b.size());
  const std::size_t n = a.size();
  EXPECT_EQ(std::memcmp(a.load(), b.load(), n * sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(a.slack(), b.slack(), n * sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(a.current(), b.current(), n * sizeof(double)), 0);
  EXPECT_EQ(
      std::memcmp(a.noise_slack(), b.noise_slack(), n * sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(a.dhat(), b.dhat(), n * sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(a.plan(), b.plan(), n * sizeof(core::PlanRef)), 0);
}

// ---------------------------------------------------------------------------

TEST(SoAKernel, DifferentialFuzzAgainstReferenceAcrossLibraries) {
  const auto nets = fuzz_nets();
  ASSERT_EQ(nets.size(), 204u);

  util::VgStats fast_total;
  for (std::size_t combo = 0; combo < std::size(kCombos); ++combo) {
    const lib::BufferLibrary library = combo_library(combo);
    SCOPED_TRACE("library b=" + std::to_string(kCombos[combo].size) +
                 " inverting=" + std::to_string(library.inverting_count()));
    for (std::size_t i = 0; i < nets.size(); ++i) {
      SCOPED_TRACE(nets[i].name + " variant " + std::to_string(i % 6));
      rct::RoutingTree segmented = nets[i].tree;
      seg::segment(segmented, {500.0});
      const core::VgOptions opt = variant(i, kCombos[combo].size);
      const auto fast =
          run_kernel(segmented, library, opt, core::VgKernel::Fast);
      const auto ref =
          run_kernel(segmented, library, opt, core::VgKernel::Reference);
      expect_identical(fast, ref);
      fast_total += fast.stats;
    }
  }

  // The sweep must genuinely have exercised the SoA machinery: lazy wire
  // flushes over lanes, whole-vector sweep bodies, recycled lane blocks,
  // and converged lists where the fused prune moved nothing.
  EXPECT_GT(fast_total.soa_flush_elems, 0u);
  EXPECT_GT(fast_total.soa_full_lane_elems, 0u);
  if (soa::kSimdLanes > 1) {
    EXPECT_GT(fast_total.soa_tail_elems, 0u);
  }
  EXPECT_GT(fast_total.soa_block_reuses, 0u);
  EXPECT_GT(fast_total.soa_prunes_no_move, 0u);
}

TEST(SoAKernel, ScalarVsSimdByteIdenticalSerializedResults) {
  const auto nets = fuzz_nets();
  ASSERT_EQ(nets.size(), 204u);

  for (std::size_t combo = 0; combo < std::size(kCombos); ++combo) {
    const lib::BufferLibrary library = combo_library(combo);
    SCOPED_TRACE("library b=" + std::to_string(kCombos[combo].size) +
                 " inverting=" + std::to_string(library.inverting_count()));
    for (std::size_t i = 0; i < nets.size(); ++i) {
      SCOPED_TRACE(nets[i].name + " variant " + std::to_string(i % 6));
      rct::RoutingTree segmented = nets[i].tree;
      seg::segment(segmented, {500.0});
      const core::VgOptions opt = variant(i, kCombos[combo].size);
      const auto vec = run_kernel(segmented, library, opt,
                                  core::VgKernel::Fast, core::SimdMode::Auto);
      const auto sca = run_kernel(segmented, library, opt,
                                  core::VgKernel::Fast, core::SimdMode::Off);
      // Byte-identical serialized results, and ALL deterministic counters
      // equal — same_counters includes the soa_* family, which must be a
      // pure function of the input regardless of the sweep mode.
      EXPECT_EQ(serialize(vec), serialize(sca));
      EXPECT_TRUE(vec.stats.same_counters(sca.stats));
    }
  }
}

TEST(SoAKernel, TailLoopCorpusSweepsBitIdenticalAcrossModes) {
  // The corpus must cover the epilogue-critical lengths for THIS build's
  // vector width (and every narrower width, for builds compiled elsewhere).
  const std::set<std::size_t> lengths = {0, 1, 2, 3, 4, 5, 7, 8, 9};
  ASSERT_TRUE(lengths.count(soa::kSimdLanes - 1) == 1 ||
              soa::kSimdLanes == 1);
  ASSERT_EQ(lengths.count(soa::kSimdLanes), 1u);
  ASSERT_EQ(lengths.count(soa::kSimdLanes + 1), 1u);

  std::vector<unsigned char> keep;
  for (const std::size_t len : lengths) {
    SCOPED_TRACE("corpus len=" + std::to_string(len));
    const core::SoAList base = load_corpus(len);

    {  // apply_wire: the flagship elementwise sweep.
      core::SoAList sca = copy_list(base);
      core::SoAList vec = copy_list(base);
      soa::apply_wire(sca, 0.03, 17.5, 0.004, /*simd=*/false);
      soa::apply_wire(vec, 0.03, 17.5, 0.004, /*simd=*/true);
      expect_lanes_identical(sca, vec);
    }

    {  // prune_sweep: vector alive-mask + fused sequential compaction.
      core::SoAList sca = copy_list(base);
      core::SoAList vec = copy_list(base);
      const auto rs = soa::prune_sweep(sca, /*noise=*/true, /*pareto=*/true,
                                       /*simd=*/false, keep);
      const auto rv = soa::prune_sweep(vec, /*noise=*/true, /*pareto=*/true,
                                       /*simd=*/true, keep);
      EXPECT_EQ(rs.dead, rv.dead);
      EXPECT_EQ(rs.inferior, rv.inferior);
      EXPECT_EQ(rs.moved, rv.moved);
      expect_lanes_identical(sca, vec);

      // Semantics, against an in-test naive filter over the original list:
      // drop NS < 0, then drop slacks not beating the running best.
      core::SoAList naive;
      double best = -std::numeric_limits<double>::infinity();
      std::size_t dead = 0, inferior = 0;
      for (std::size_t i = 0; i < base.size(); ++i) {
        if (base.noise_slack()[i] < 0.0) {
          ++dead;
          continue;
        }
        if (base.slack()[i] <= best) {
          ++inferior;
          continue;
        }
        best = base.slack()[i];
        naive.push_back(base.load()[i], base.slack()[i], base.current()[i],
                        base.noise_slack()[i], base.dhat()[i],
                        base.plan()[i]);
      }
      EXPECT_EQ(rs.dead, dead);
      EXPECT_EQ(rs.inferior, inferior);
      expect_lanes_identical(sca, naive);
    }

    {  // emit_pairs + merge_fill: the deterministic pairing must not depend
       // on the sweep mode of the lane arithmetic that fills it.
      const core::CandSpan span = base.span();
      std::vector<std::uint32_t> ia, jb;
      const std::size_t m = soa::emit_pairs(span, span, ia, jb);
      core::SoAList sca, vec;
      soa::merge_fill(span, span, ia.data(), jb.data(), m, sca,
                      /*simd=*/false);
      soa::merge_fill(span, span, ia.data(), jb.data(), m, vec,
                      /*simd=*/true);
      ASSERT_EQ(sca.size(), m);
      // merge_fill leaves the plan lane to the caller; null it for the
      // bitwise compare.
      for (std::size_t o = 0; o < m; ++o)
        sca.plan()[o] = vec.plan()[o] = core::kNullPlan;
      expect_lanes_identical(sca, vec);
      if (len > 0) {
        EXPECT_GE(m, len);  // a self-merge emits at least the list itself
      }
    }

    {  // gather: one permutation (reversal) through all six lanes.
      std::vector<std::uint32_t> perm(base.size());
      for (std::size_t i = 0; i < perm.size(); ++i)
        perm[i] = static_cast<std::uint32_t>(perm.size() - 1 - i);
      core::SoAList sca, vec;
      soa::gather(base, perm.data(), perm.size(), sca, /*simd=*/false);
      soa::gather(base, perm.data(), perm.size(), vec, /*simd=*/true);
      expect_lanes_identical(sca, vec);
      for (std::size_t i = 0; i < base.size(); ++i) {
        const std::size_t j = base.size() - 1 - i;
        EXPECT_EQ(sca.load()[i], base.load()[j]);
        EXPECT_EQ(sca.slack()[i], base.slack()[j]);
      }
    }
  }
}

TEST(SoAKernel, SoAListAlignmentGrowthAndPoolReuse) {
  core::SoAList list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.capacity(), 0u);

  // Push through several growth doublings; contents must survive each
  // relocation exactly and every lane must stay 64-byte aligned.
  for (std::size_t i = 0; i < 100; ++i)
    list.push_back(1.0 + 0.125 * static_cast<double>(i),
                   -3.5 * static_cast<double>(i), 0.001 * static_cast<double>(i),
                   0.5 - 0.0625 * static_cast<double>(i),
                   7.0 + static_cast<double>(i),
                   static_cast<core::PlanRef>(i));
  ASSERT_EQ(list.size(), 100u);
  const auto aligned = [](const void* p) {
    return reinterpret_cast<std::uintptr_t>(p) % core::SoAList::kAlign == 0;
  };
  EXPECT_TRUE(aligned(list.load()));
  EXPECT_TRUE(aligned(list.slack()));
  EXPECT_TRUE(aligned(list.current()));
  EXPECT_TRUE(aligned(list.noise_slack()));
  EXPECT_TRUE(aligned(list.dhat()));
  EXPECT_TRUE(aligned(list.plan()));
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(list.load()[i], 1.0 + 0.125 * static_cast<double>(i));
    EXPECT_EQ(list.slack()[i], -3.5 * static_cast<double>(i));
    EXPECT_EQ(list.plan()[i], static_cast<core::PlanRef>(i));
  }

  // Prefix views share the lane pointers.
  const core::CandSpan prefix = list.span(10);
  EXPECT_EQ(prefix.n, 10u);
  EXPECT_EQ(prefix.load, list.load());
  EXPECT_EQ(prefix.plan, list.plan());

  // Pool round trip: a released block comes back cleared but with its
  // capacity (and its allocation) intact; an empty pool hands out
  // capacity-0 lists and never counts a reuse.
  core::SoAPool pool;
  core::SoAList fresh = pool.acquire();
  EXPECT_EQ(fresh.capacity(), 0u);
  EXPECT_EQ(pool.reuses(), 0u);
  pool.release(std::move(fresh));  // capacity 0: dropped, not pooled

  const std::size_t cap = list.capacity();
  pool.release(std::move(list));
  core::SoAList back = pool.acquire();
  EXPECT_EQ(pool.reuses(), 1u);
  EXPECT_EQ(back.size(), 0u);
  EXPECT_EQ(back.capacity(), cap);
}

TEST(SoAKernel, CorruptedSoAViewIsCaughtByStructuralChecks) {
  // The SoA overload of detail::verify_cand_list — what the fast kernel
  // runs over every block after each DP step (contract level 2 or
  // check_invariants) — must name each corruption, mirroring the AoS
  // corruption cases of test_vg_kernel.
  core::VgOptions opt;  // noise constraints and pruning default on
  core::PlanArena arena;

  core::SoAList good;
  good.push_back(1.0, 2.0, 0.0, 0.5, 0.0, core::kNullPlan);
  good.push_back(2.0, 3.0, 0.0, 0.6, 0.0, core::kNullPlan);
  EXPECT_NO_THROW(core::detail::verify_cand_list(good.span(), opt, arena));

  // Lost (load asc, slack desc) sort order.
  core::SoAList unsorted;
  unsorted.push_back(2.0, 3.0, 0.0, 0.6, 0.0, core::kNullPlan);
  unsorted.push_back(1.0, 2.0, 0.0, 0.5, 0.0, core::kNullPlan);
  EXPECT_THROW(core::detail::verify_cand_list(unsorted.span(), opt, arena),
               std::logic_error);

  // Sorted, but a dominated survivor: load rises while slack falls, so the
  // strict Pareto staircase is broken...
  core::SoAList dominated = copy_list(good);
  dominated.slack()[1] = 1.0;
  EXPECT_THROW(core::detail::verify_cand_list(dominated.span(), opt, arena),
               std::logic_error);
  // ...unless dominance pruning was disabled (ablation mode).
  core::VgOptions unpruned = opt;
  unpruned.prune_candidates = false;
  EXPECT_NO_THROW(
      core::detail::verify_cand_list(dominated.span(), unpruned, arena));

  // A dead candidate (negative noise slack) under noise constraints.
  core::SoAList dead = copy_list(good);
  dead.noise_slack()[1] = -0.1;
  EXPECT_THROW(core::detail::verify_cand_list(dead.span(), opt, arena),
               std::logic_error);
  // ...which is legal in DelayOpt mode (noise ignored).
  core::VgOptions delayopt = opt;
  delayopt.noise_constraints = false;
  EXPECT_NO_THROW(
      core::detail::verify_cand_list(dead.span(), delayopt, arena));
}

TEST(SoAKernel, LaneUtilizationCountersArePureFunctionsOfTheInput) {
  // One deep chain: lots of lazy-offset flushes. The lane-utilization
  // split must account for every flushed element and reproduce exactly in
  // both sweep modes (it is bookkept from sweep LENGTHS, never from which
  // code path executed).
  const lib::BufferLibrary library = lib::default_library();
  rct::RoutingTree segmented = test::long_two_pin(12000.0);
  seg::segment(segmented, {500.0});
  core::VgOptions opt;

  const auto vec = run_kernel(segmented, library, opt, core::VgKernel::Fast,
                              core::SimdMode::Auto);
  const auto sca = run_kernel(segmented, library, opt, core::VgKernel::Fast,
                              core::SimdMode::Off);
  EXPECT_GT(vec.stats.soa_flush_elems, 0u);
  EXPECT_GT(vec.stats.soa_full_lane_elems + vec.stats.soa_tail_elems, 0u);
  EXPECT_EQ(vec.stats.soa_flush_elems, sca.stats.soa_flush_elems);
  EXPECT_EQ(vec.stats.soa_full_lane_elems, sca.stats.soa_full_lane_elems);
  EXPECT_EQ(vec.stats.soa_tail_elems, sca.stats.soa_tail_elems);
  EXPECT_EQ(vec.stats.soa_prunes_no_move, sca.stats.soa_prunes_no_move);
  EXPECT_EQ(vec.stats.soa_block_reuses, sca.stats.soa_block_reuses);

  // The reference kernel has no SoA machinery; its counters stay zero.
  const auto ref =
      run_kernel(segmented, library, opt, core::VgKernel::Reference);
  EXPECT_EQ(ref.stats.soa_flush_elems, 0u);
  EXPECT_EQ(ref.stats.soa_full_lane_elems, 0u);
  EXPECT_EQ(ref.stats.soa_tail_elems, 0u);
  EXPECT_EQ(ref.stats.soa_block_reuses, 0u);
}

}  // namespace
