#include <gtest/gtest.h>

#include <cmath>

#include "common/test_nets.hpp"
#include "noise/devgan.hpp"
#include "sim/dense.hpp"
#include "sim/golden.hpp"
#include "sim/tree_solver.hpp"
#include "util/rng.hpp"

namespace {

using namespace nbuf;
using namespace nbuf::units;

// --- DenseLu -------------------------------------------------------------------

TEST(DenseLu, SolvesKnownSystem) {
  // [2 1; 1 3] x = [5; 10] -> x = [1; 3]
  sim::DenseLu lu({2, 1, 1, 3}, 2);
  std::vector<double> b = {5, 10};
  lu.solve(b);
  EXPECT_NEAR(b[0], 1.0, 1e-12);
  EXPECT_NEAR(b[1], 3.0, 1e-12);
}

TEST(DenseLu, PivotingHandlesZeroDiagonal) {
  // [0 1; 1 0] x = [2; 3] -> x = [3; 2]
  sim::DenseLu lu({0, 1, 1, 0}, 2);
  std::vector<double> b = {2, 3};
  lu.solve(b);
  EXPECT_NEAR(b[0], 3.0, 1e-12);
  EXPECT_NEAR(b[1], 2.0, 1e-12);
}

TEST(DenseLu, SingularThrows) {
  EXPECT_THROW(sim::DenseLu({1, 2, 2, 4}, 2), std::invalid_argument);
}

TEST(DenseLu, RandomSystemsRoundTrip) {
  util::Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 12;
    std::vector<double> a(n * n);
    for (auto& v : a) v = rng.uniform(-1, 1);
    for (std::size_t i = 0; i < n; ++i) a[i * n + i] += 5.0;  // diag dominant
    std::vector<double> x_true(n);
    for (auto& v : x_true) v = rng.uniform(-2, 2);
    std::vector<double> b(n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) b[i] += a[i * n + j] * x_true[j];
    sim::DenseLu lu(a, n);
    lu.solve(b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(b[i], x_true[i], 1e-9);
  }
}

// --- DenseCircuit ----------------------------------------------------------------

TEST(DenseCircuit, DcVoltageDivider) {
  sim::DenseCircuit c;
  const auto n1 = c.add_nodes(2);  // n1, n2
  c.add_driven_node(n1, 100.0, [](double) { return 1.0; });
  c.add_resistor(n1, n1 + 1, 100.0);
  c.add_resistor(n1 + 1, 0, 200.0);
  const auto v = c.dc(0.0);
  // Source 1V behind 100; divider: v1 = 1 * 300/(400) ... solve: current
  // i = 1/(100+100+200) = 2.5mA; v1 = 1 - 0.25 = 0.75; v2 = 0.5.
  EXPECT_NEAR(v[n1], 0.75, 1e-9);
  EXPECT_NEAR(v[n1 + 1], 0.5, 1e-9);
}

TEST(DenseCircuit, RcStepResponseMatchesAnalytic) {
  // Single RC: v(t) = 1 - e^{-t/RC}.
  const double R = 1000.0, C = 1e-12;
  sim::DenseCircuit c;
  const auto n = c.add_nodes(1);
  c.add_driven_node(n, R, [](double) { return 1.0; });
  c.add_capacitor(n, 0, C);
  const double tau = R * C;
  const auto res = c.transient(5 * tau, tau / 2000.0);
  const double expect = 1.0 - std::exp(-5.0);
  EXPECT_NEAR(res.final_v[n], expect, 2e-3);
}

TEST(DenseCircuit, TrapezoidalAgreesWithBackwardEuler) {
  const double R = 500.0, C = 2e-12;
  sim::DenseCircuit c;
  const auto n = c.add_nodes(1);
  c.add_driven_node(n, R, [](double t) { return t > 1e-10 ? 1.0 : 0.0; });
  c.add_capacitor(n, 0, C);
  const auto be = c.transient(5e-9, 1e-12, sim::DenseCircuit::Method::BackwardEuler);
  const auto tr = c.transient(5e-9, 1e-12, sim::DenseCircuit::Method::Trapezoidal);
  EXPECT_NEAR(be.final_v[n], tr.final_v[n], 1e-3);
}

TEST(DenseCircuit, CouplingInjectsNoise) {
  // Quiet node coupled to a ramp through C_c shows a transient bump that
  // decays back to zero.
  sim::DenseCircuit c;
  const auto victim = c.add_nodes(2);  // victim, aggressor
  const auto aggr = victim + 1;
  c.add_resistor(victim, 0, 200.0);  // victim driver holds low
  c.add_driven_node(aggr, 1.0, [](double t) {
    return 1.8 * std::clamp(t / 0.25e-9, 0.0, 1.0);
  });
  c.add_capacitor(victim, aggr, 100 * fF);
  const auto res = c.transient(3e-9, 0.5e-12);
  EXPECT_GT(res.peak_abs[victim], 0.01);
  EXPECT_NEAR(res.final_v[victim], 0.0, 1e-3);
}

// --- TreeSolver ------------------------------------------------------------------

TEST(TreeSolver, ChainMatchesAnalytic) {
  // Root grounded through g=1 (extra), chain of two resistors g=2; inject
  // 1A at the leaf: v_leaf - hand-solved ladder.
  sim::TreeSolver s({0, 0, 1}, {0, 2.0, 2.0}, {1.0, 0.0, 0.0});
  std::vector<double> rhs = {0.0, 0.0, 1.0};
  s.solve(rhs);
  // All 1A flows to ground through root: v0 = 1/1 = 1; v1 = v0 + 1/2;
  // v2 = v1 + 1/2.
  EXPECT_NEAR(rhs[0], 1.0, 1e-12);
  EXPECT_NEAR(rhs[1], 1.5, 1e-12);
  EXPECT_NEAR(rhs[2], 2.0, 1e-12);
}

TEST(TreeSolver, MatchesDenseOnRandomTrees) {
  util::Rng rng(23);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform_int(1, 30));
    std::vector<std::size_t> parent(n, 0);
    std::vector<double> g(n, 0.0), extra(n, 0.0);
    for (std::size_t i = 1; i < n; ++i) {
      parent[i] = static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(i) - 1));
      g[i] = rng.uniform(0.1, 10.0);
      extra[i] = rng.chance(0.5) ? rng.uniform(0.0, 1.0) : 0.0;
    }
    extra[0] = rng.uniform(0.5, 2.0);
    // Dense version of the same Laplacian-plus-diagonal.
    std::vector<double> a(n * n, 0.0);
    for (std::size_t i = 0; i < n; ++i) a[i * n + i] += extra[i];
    for (std::size_t i = 1; i < n; ++i) {
      a[i * n + i] += g[i];
      a[parent[i] * n + parent[i]] += g[i];
      a[i * n + parent[i]] -= g[i];
      a[parent[i] * n + i] -= g[i];
    }
    std::vector<double> rhs(n);
    for (auto& v : rhs) v = rng.uniform(-1, 1);
    std::vector<double> dense_rhs = rhs;
    sim::DenseLu lu(a, n);
    lu.solve(dense_rhs);
    sim::TreeSolver ts(parent, g, extra);
    ts.solve(rhs);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(rhs[i], dense_rhs[i], 1e-9);
  }
}

TEST(TreeSolver, RejectsSingularSystem) {
  // No grounding anywhere: floating network.
  EXPECT_THROW(sim::TreeSolver({0, 0}, {0.0, 1.0}, {0.0, 0.0}),
               std::invalid_argument);
}

TEST(TreeSolver, RejectsCyclicParents) {
  EXPECT_THROW(sim::TreeSolver({0, 2, 1}, {0, 1, 1}, {1, 0, 0}),
               std::invalid_argument);
}

// --- golden noise analysis ----------------------------------------------------------

TEST(Golden, QuietNetWithoutCouplingIsSilent) {
  auto t = test::long_two_pin(3000.0);
  auto opt = sim::golden_options_from(lib::default_technology());
  opt.coupling_ratio = 0.0;
  const auto rep = sim::golden_analyze_unbuffered(t, opt);
  EXPECT_LT(rep.sinks[0].peak, 1e-9);
}

TEST(Golden, PeakIsPositiveAndBelowVdd) {
  auto t = test::long_two_pin(5000.0);
  const auto opt = sim::golden_options_from(lib::default_technology());
  const auto rep = sim::golden_analyze_unbuffered(t, opt);
  EXPECT_GT(rep.sinks[0].peak, 0.05);
  EXPECT_LT(rep.sinks[0].peak, 1.8);
}

TEST(Golden, DevganMetricIsUpperBound) {
  // The headline property (Section II-B): the metric bounds simulated peak
  // noise from above, at every length.
  const auto opt = sim::golden_options_from(lib::default_technology());
  for (double len : {1000.0, 2500.0, 5000.0, 9000.0}) {
    auto t = test::long_two_pin(len);
    const auto metric = noise::analyze_unbuffered(t);
    const auto golden = sim::golden_analyze_unbuffered(t, opt);
    EXPECT_GE(metric.sinks[0].noise, golden.sinks[0].peak)
        << "length " << len;
    EXPECT_GT(golden.sinks[0].peak, 0.0);
  }
}

TEST(Golden, MetricBoundHoldsOnMultiSinkTrees) {
  const auto opt = sim::golden_options_from(lib::default_technology());
  auto t = steiner::make_balanced_tree(3, 900.0, test::default_driver(),
                                       test::default_sink(),
                                       lib::default_technology());
  const auto metric = noise::analyze_unbuffered(t);
  const auto golden = sim::golden_analyze_unbuffered(t, opt);
  ASSERT_EQ(metric.sinks.size(), golden.sinks.size());
  for (std::size_t i = 0; i < metric.sinks.size(); ++i)
    EXPECT_GE(metric.sinks[i].noise, golden.sinks[i].peak);
}

TEST(Golden, BufferReducesPeakNoise) {
  auto t1 = test::long_two_pin(6000.0);
  auto t2 = test::long_two_pin(6000.0);
  const auto l = lib::default_library();
  const auto opt = sim::golden_options_from(lib::default_technology());
  const auto mid = t2.split_wire(t2.sinks().front().node, 3000.0);
  rct::BufferAssignment a;
  a.place(mid, lib::BufferId{9});
  const auto before = sim::golden_analyze_unbuffered(t1, opt);
  const auto after = sim::golden_analyze(t2, a, l, opt);
  EXPECT_LT(after.sinks[0].peak, before.sinks[0].peak);
}

TEST(Golden, ConvergenceCheckPassesAtDefaultStep) {
  // The production timestep (200 steps per rise) must already be converged:
  // halving dt moves no leaf peak past the tolerance, so the checked run
  // returns normally and agrees with the unchecked one.
  auto t = test::long_two_pin(5000.0);
  auto opt = sim::golden_options_from(lib::default_technology());
  const auto plain = sim::golden_analyze_unbuffered(t, opt);
  opt.check_convergence = true;
  const auto checked = sim::golden_analyze_unbuffered(t, opt);
  EXPECT_DOUBLE_EQ(checked.sinks[0].peak, plain.sinks[0].peak);
}

TEST(Golden, ConvergenceCheckFlagsCoarseStep) {
  // A deliberately coarse march (2 steps per rise) under-resolves the ramp;
  // dt/2 moves the peak, and the check must refuse to return the number.
  auto t = test::long_two_pin(5000.0);
  auto opt = sim::golden_options_from(lib::default_technology());
  opt.check_convergence = true;
  opt.steps_per_rise = 2.0;
  EXPECT_THROW(sim::golden_analyze_unbuffered(t, opt),
               sim::ConvergenceError);
}

TEST(Golden, ConvergenceErrorCarriesDiagnostics) {
  auto t = test::long_two_pin(5000.0);
  auto opt = sim::golden_options_from(lib::default_technology());
  opt.check_convergence = true;
  opt.steps_per_rise = 2.0;
  try {
    (void)sim::golden_analyze_unbuffered(t, opt);
    FAIL() << "expected ConvergenceError";
  } catch (const sim::ConvergenceError& e) {
    EXPECT_TRUE(e.node.valid());
    EXPECT_GT(e.coarse_peak, 0.0);
    EXPECT_GT(e.fine_peak, 0.0);
    // The error is precisely "the peaks disagree beyond tolerance".
    const double tol = std::max(opt.convergence_atol,
                                opt.convergence_rtol * e.fine_peak);
    EXPECT_GT(std::abs(e.coarse_peak - e.fine_peak), tol);
  }
}

TEST(Golden, ViolationCountUsesMargins) {
  auto t = test::long_two_pin(9000.0);  // far beyond critical length
  const auto opt = sim::golden_options_from(lib::default_technology());
  const auto rep = sim::golden_analyze_unbuffered(t, opt);
  EXPECT_EQ(rep.violation_count, 1u);
  EXPECT_LT(rep.worst_slack, 0.0);
}

TEST(Golden, TreeSolverPathMatchesDenseCircuit) {
  // Rebuild the same single-stage circuit with the dense engine and compare
  // the sink's peak.
  const double len = 2000.0;
  const auto tech = lib::default_technology();
  auto t = test::long_two_pin(len, 150.0);
  auto opt = sim::golden_options_from(tech);
  opt.section_length = 250.0;  // 8 sections
  const auto stages =
      rct::decompose(t, rct::BufferAssignment{}, lib::BufferLibrary{});
  const auto peaks = sim::golden_stage_peaks(t, stages[0], opt);
  double tree_peak = -1.0;
  for (const auto& [id, pk] : peaks)
    if (id == t.sinks().front().node) tree_peak = pk;
  ASSERT_GE(tree_peak, 0.0);

  // Dense twin: 8 pi-sections, aggressor as near-ideal driven node.
  const int n_sec = 8;
  sim::DenseCircuit dc;
  const auto first = dc.add_nodes(n_sec + 2);  // root + 8 + aggressor
  const auto root = first;
  const auto aggr = first + n_sec + 1;
  dc.add_resistor(root, 0, 150.0);  // victim driver
  const double r_sec = tech.wire_res(len) / n_sec;
  const double c_sec = tech.wire_cap(len) / n_sec;
  const double lam = tech.coupling_ratio;
  dc.add_driven_node(aggr, 1e-3, [&tech](double tt) {
    return tech.vdd * std::clamp(tt / tech.aggressor_rise, 0.0, 1.0);
  });
  for (int s = 0; s < n_sec; ++s) {
    const auto up = root + s, down = root + s + 1;
    dc.add_resistor(up, down, r_sec);
    for (auto end : {up, down}) {
      dc.add_capacitor(end, 0, (1 - lam) * c_sec / 2);
      dc.add_capacitor(end, aggr, lam * c_sec / 2);
    }
  }
  dc.add_capacitor(root + n_sec, 0, 10 * fF);  // sink pin
  const double h = tech.aggressor_rise / opt.steps_per_rise;
  const auto res = dc.transient(4e-9, h);
  EXPECT_NEAR(res.peak_abs[root + n_sec], tree_peak, 0.03 * tree_peak);
}

TEST(Golden, OptionsFromTechnology) {
  const auto tech = lib::default_technology();
  const auto opt = sim::golden_options_from(tech);
  EXPECT_DOUBLE_EQ(opt.coupling_ratio, 0.7);
  EXPECT_DOUBLE_EQ(opt.aggressor.vdd, 1.8);
  EXPECT_DOUBLE_EQ(opt.aggressor.rise, 0.25 * ns);
  EXPECT_NEAR(opt.aggressor.slope(), 7.2e9, 1.0);
}

TEST(Waveform, SaturatedRamp) {
  const sim::SaturatedRamp r{1.8, 0.25 * ns, 0.0};
  EXPECT_DOUBLE_EQ(r.at(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(r.at(0.125 * ns), 0.9);
  EXPECT_DOUBLE_EQ(r.at(1.0), 1.8);
  EXPECT_NEAR(r.slope(), 7.2e9, 1e-3);
}

}  // namespace
