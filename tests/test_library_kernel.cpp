// Randomized-library differential fuzz (PR 6).
//
// The multi-type kernel work (grouped best-predecessor insertion, polarity
// phases, dominated-at-birth skip) must not depend on WHICH library it
// runs against. This suite fuzzes the library axis the way test_vg_kernel
// fuzzes the net axis:
//
//  * Differential: >= 200 generated nets, each optimized under every
//    (library size, inverting fraction) in {1, 3, 8, 17, 64} x {0, 0.5}
//    with seeded random libraries (tests/common/random_library.hpp) and
//    the full option-variant cycle. Fast and Reference kernels must be
//    bit-identical on every pair — same slack bits, placements, per_count
//    table, and legacy DP counters.
//  * Schedule independence: the same fuzz workload through BatchEngine at
//    1 and at 4 threads must reproduce every per-net result and counter
//    exactly. This test is the reason the suite runs in the TSan lane.
//
// Everything here is seeded; there is no run-to-run variation.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "batch/batch.hpp"
#include "common/random_library.hpp"
#include "common/test_nets.hpp"
#include "common/vg_compare.hpp"
#include "core/vanginneken.hpp"
#include "lib/buffer.hpp"
#include "lib/wire.hpp"
#include "netgen/netgen.hpp"
#include "seg/segment.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace {

using namespace nbuf;
using namespace nbuf::units;
using test::expect_identical;

core::VgResult run_kernel(const rct::RoutingTree& segmented,
                          const lib::BufferLibrary& library,
                          core::VgOptions opt, core::VgKernel kernel) {
  opt.kernel = kernel;
  return core::optimize(segmented, library, opt);
}

// The test_vg_kernel option cycle, parameterized on the library size so
// the buffer-cost variant stays valid for every fuzzed library.
core::VgOptions variant(std::size_t which, std::size_t lib_size) {
  core::VgOptions opt;
  opt.check_invariants = true;
  switch (which % 6) {
    case 0:  // BuffOpt shape: noise-constrained, best slack
      break;
    case 1:  // DelayOpt baseline
      opt.noise_constraints = false;
      break;
    case 2:  // Problem 3 objective
      opt.objective = core::VgObjective::MinBuffersMeetingConstraints;
      break;
    case 3:  // simultaneous wire sizing (the sorting fork path)
      opt.wire_widths = lib::default_wire_widths();
      break;
    case 4:  // Lillis buffer costs: bucket index = total cost
      opt.buffer_costs.assign(lib_size, 1);
      for (std::size_t i = 0; i < opt.buffer_costs.size(); i += 2)
        opt.buffer_costs[i] = 2;
      break;
    case 5:  // slew-limited, delay-only
      opt.noise_constraints = false;
      opt.max_slew = 150.0 * ps;
      break;
  }
  return opt;
}

TEST(LibraryKernel, DifferentialFuzzAcrossLibrarySizesAndPolarities) {
  // The nets are generated once (against the default library — the
  // workload shape does not depend on the library under test) and reused
  // for every fuzzed library, so a failure names a reproducible
  // (net, library) pair.
  netgen::TestbenchOptions gen;
  gen.net_count = 204;
  gen.seed = 61403;
  const auto nets = netgen::generate_testbench(lib::default_library(), gen);
  ASSERT_EQ(nets.size(), 204u);

  const std::size_t sizes[] = {1, 3, 8, 17, 64};
  const double fractions[] = {0.0, 0.5};
  std::size_t combo = 0;
  bool any_inverting_used = false;
  for (const std::size_t b : sizes) {
    for (const double frac : fractions) {
      const lib::BufferLibrary library =
          test::random_library(0xF022 + 977 * combo, b, frac);
      ++combo;
      SCOPED_TRACE("library b=" + std::to_string(b) +
                   " inverting=" + std::to_string(library.inverting_count()));
      ASSERT_EQ(library.size(), b);
      if (frac == 0.0) {
        ASSERT_EQ(library.inverting_count(), 0u);
      }

      util::VgStats fast_total;
      for (std::size_t i = 0; i < nets.size(); ++i) {
        SCOPED_TRACE(nets[i].name + " variant " + std::to_string(i % 6));
        rct::RoutingTree segmented = nets[i].tree;
        seg::segment(segmented, {500.0});
        const core::VgOptions opt = variant(i, b);
        const auto fast =
            run_kernel(segmented, library, opt, core::VgKernel::Fast);
        const auto ref =
            run_kernel(segmented, library, opt, core::VgKernel::Reference);
        expect_identical(fast, ref);
        fast_total += fast.stats;
        for (const auto& [node, type] : fast.buffers.entries())
          any_inverting_used =
              any_inverting_used || library.at(type).inverting;
      }

      // The fast kernel must actually have gone through the
      // best-predecessor path, and report the library it saw.
      EXPECT_EQ(fast_total.lib_types, b);
      EXPECT_GT(fast_total.bp_prune_calls, 0u);
    }
  }
  // The half-inverting libraries must genuinely exercise the polarity
  // phases: somewhere in the sweep a chosen solution uses inverters (in
  // pairs — sinks demand positive phase). Not required of every single
  // library (a small one may never find an inverter pair profitable).
  EXPECT_TRUE(any_inverting_used);
}

TEST(LibraryKernel, SingleTypeRandomLibraryMatchesAcrossKernels) {
  // b=1 degenerates the best-predecessor walk to a single query; make sure
  // the degenerate path is hit head-on with a chain-heavy net, not only
  // inside the sweep above.
  const lib::BufferLibrary library = test::random_library(0xB001, 1, 0.0);
  const auto net = test::long_two_pin(14000.0);
  rct::RoutingTree segmented = net;
  seg::segment(segmented, {500.0});
  for (std::size_t v = 0; v < 6; ++v) {
    SCOPED_TRACE("variant " + std::to_string(v));
    const core::VgOptions opt = variant(v, 1);
    const auto fast =
        run_kernel(segmented, library, opt, core::VgKernel::Fast);
    const auto ref =
        run_kernel(segmented, library, opt, core::VgKernel::Reference);
    expect_identical(fast, ref);
  }
}

TEST(LibraryKernel, BatchScheduleIndependentOnRandomLibrary) {
  // The TSan-lane teeth: the same fuzzed 17-type half-inverting library
  // through the batch engine at 1 and at 4 threads. Results and the
  // aggregated deterministic counters must reproduce exactly (the engine
  // writes results[i] by input index; nothing may depend on schedule).
  netgen::TestbenchOptions gen;
  gen.net_count = 96;
  gen.seed = 4403;
  const auto nets =
      batch::from_generated(netgen::generate_testbench(lib::default_library(), gen));
  const lib::BufferLibrary library = test::random_library(0xA11CE, 17, 0.5);

  batch::BatchOptions serial;
  serial.threads = 1;
  batch::BatchOptions pooled;
  pooled.threads = 4;
  const batch::BatchResult a = batch::BatchEngine(serial).run(nets, library);
  const batch::BatchResult b = batch::BatchEngine(pooled).run(nets, library);

  ASSERT_EQ(a.results.size(), nets.size());
  ASSERT_EQ(b.results.size(), nets.size());
  for (std::size_t i = 0; i < nets.size(); ++i) {
    SCOPED_TRACE(nets[i].name);
    expect_identical(a.results[i].vg, b.results[i].vg);
  }
  EXPECT_EQ(a.summary.feasible, b.summary.feasible);
  EXPECT_EQ(a.summary.buffers_inserted, b.summary.buffers_inserted);
  EXPECT_EQ(a.summary.timing_met, b.summary.timing_met);
  EXPECT_TRUE(a.summary.stats.same_counters(b.summary.stats));
  EXPECT_EQ(a.summary.stats.lib_types, 17u);
}

TEST(LibraryKernel, BestPredecessorCountersSplitByKernel) {
  // bp_prune_calls / bp_candidates_killed are fast-kernel path counters
  // (the reference kernel has no grouped structure); lib_types is shared.
  const lib::BufferLibrary library = test::random_library(0x5EED, 17, 0.5);
  const auto net = test::long_two_pin(12000.0);
  rct::RoutingTree segmented = net;
  seg::segment(segmented, {500.0});
  core::VgOptions opt;

  const auto fast =
      run_kernel(segmented, library, opt, core::VgKernel::Fast);
  EXPECT_EQ(fast.stats.lib_types, 17u);
  EXPECT_GT(fast.stats.bp_prune_calls, 0u);

  const auto ref =
      run_kernel(segmented, library, opt, core::VgKernel::Reference);
  EXPECT_EQ(ref.stats.lib_types, 17u);
  EXPECT_EQ(ref.stats.bp_prune_calls, 0u);
  EXPECT_EQ(ref.stats.bp_candidates_killed, 0u);
}

}  // namespace
