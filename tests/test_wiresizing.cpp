// Simultaneous wire sizing + buffer insertion (the Lillis extension).
#include <gtest/gtest.h>

#include <functional>

#include "common/test_nets.hpp"
#include "core/vanginneken.hpp"
#include "elmore/elmore.hpp"
#include "noise/devgan.hpp"
#include "seg/segment.hpp"

namespace {

using namespace nbuf;
using namespace nbuf::units;
using test::default_driver;
using test::default_sink;

const lib::BufferLibrary kLib = lib::default_library();
const lib::BufferLibrary kOne = lib::single_buffer_library();

rct::RoutingTree net(double len, double seg_len, double rat = 2 * ns) {
  auto t = steiner::make_two_pin(len, default_driver(150.0, 30 * ps),
                                 default_sink(15 * fF, rat),
                                 lib::default_technology());
  seg::segment(t, {seg_len});
  return t;
}

TEST(WireWidthLibrary, DefaultLadder) {
  const auto l = lib::default_wire_widths();
  ASSERT_EQ(l.size(), 3u);
  EXPECT_DOUBLE_EQ(l.at(0).res_scale, 1.0);
  EXPECT_LT(l.at(2).res_scale, l.at(1).res_scale);
  EXPECT_GT(l.at(2).cap_scale, l.at(1).cap_scale);
}

TEST(WireWidthLibrary, Index0MustBeBase) {
  lib::WireWidthLibrary l;
  EXPECT_THROW(l.add({"w2x", 0.5, 1.4, 0.8}), std::invalid_argument);
  l.add({"w1x", 1.0, 1.0, 1.0});
  EXPECT_NO_THROW(l.add({"w2x", 0.5, 1.4, 0.8}));
}

TEST(WireWidthLibrary, RejectsBadScales) {
  lib::WireWidthLibrary l;
  l.add({"w1x", 1.0, 1.0, 1.0});
  EXPECT_THROW(l.add({"bad", 0.0, 1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(l.add({"bad", 1.0, -1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(l.add({"", 1.0, 1.0, 1.0}), std::invalid_argument);
}

TEST(WireSizing, ApplyScalesElectricalsKeepsLength) {
  auto t = test::long_two_pin(1000.0);
  const auto sink = t.sinks().front().node;
  const rct::Wire before = t.node(sink).parent_wire;
  core::apply_wire_widths(t, {{sink, 2}}, lib::default_wire_widths());
  const rct::Wire after = t.node(sink).parent_wire;
  EXPECT_DOUBLE_EQ(after.length, before.length);
  EXPECT_DOUBLE_EQ(after.resistance, before.resistance * 0.25);
  EXPECT_DOUBLE_EQ(after.capacitance, before.capacitance * 2.35);
  EXPECT_DOUBLE_EQ(after.coupling_current, before.coupling_current * 0.65);
}

TEST(WireSizing, NeverWorseThanBufferingAlone) {
  for (double len : {3000.0, 6000.0, 10000.0}) {
    auto t = net(len, 500.0);
    core::VgOptions plain, sized;
    plain.noise_constraints = false;
    sized.noise_constraints = false;
    sized.wire_widths = lib::default_wire_widths();
    const auto r0 = core::optimize(t, kLib, plain);
    const auto r1 = core::optimize(t, kLib, sized);
    EXPECT_GE(r1.slack, r0.slack - 1e-15) << len;
  }
}

TEST(WireSizing, ActuallyImprovesLongResistiveNet) {
  auto t = net(12000.0, 500.0);
  core::VgOptions plain, sized;
  plain.noise_constraints = false;
  sized.noise_constraints = false;
  sized.wire_widths = lib::default_wire_widths();
  const auto r0 = core::optimize(t, kLib, plain);
  const auto r1 = core::optimize(t, kLib, sized);
  EXPECT_GT(r1.slack, r0.slack);       // widening must pay off here
  EXPECT_FALSE(r1.wire_widths.empty());  // and some wire was widened
}

TEST(WireSizing, PredictedSlackMatchesEvaluation) {
  auto t = net(9000.0, 750.0);
  core::VgOptions opt;
  opt.noise_constraints = false;
  opt.wire_widths = lib::default_wire_widths();
  const auto res = core::optimize(t, kLib, opt);
  // Apply the chosen widths, then evaluate with Elmore.
  auto sized = t;
  core::apply_wire_widths(sized, res.wire_widths, opt.wire_widths);
  const auto timing = elmore::analyze(sized, res.buffers, kLib);
  EXPECT_NEAR(res.slack, timing.worst_slack, 1e-13);
}

TEST(WireSizing, NoiseModeStaysClean) {
  auto t = net(10000.0, 500.0);
  core::VgOptions opt;
  opt.noise_constraints = true;
  opt.wire_widths = lib::default_wire_widths();
  const auto res = core::optimize(t, kLib, opt);
  ASSERT_TRUE(res.feasible);
  auto sized = t;
  core::apply_wire_widths(sized, res.wire_widths, opt.wire_widths);
  EXPECT_TRUE(noise::analyze(sized, res.buffers, kLib).clean());
}

TEST(WireSizing, MatchesBruteForceOnSmallNet) {
  // 3 segments x 3 widths x {none, buf} per interior site, exhaustive.
  auto t = net(4500.0, 1500.0);
  const auto widths = lib::default_wire_widths();
  std::vector<rct::NodeId> wires;  // nodes owning a sizable wire
  std::vector<rct::NodeId> sites;
  for (auto id : t.preorder()) {
    const auto& n = t.node(id);
    if (id != t.source()) wires.push_back(id);
    if (n.kind == rct::NodeKind::Internal && n.buffer_allowed)
      sites.push_back(id);
  }
  double best = -std::numeric_limits<double>::infinity();
  std::vector<std::size_t> wsel(wires.size(), 0);
  rct::BufferAssignment a;
  std::function<void(std::size_t)> buf_rec = [&](std::size_t i) {
    if (i == sites.size()) {
      auto sized = t;
      std::vector<core::PlannedWire> choices;
      for (std::size_t k = 0; k < wires.size(); ++k)
        if (wsel[k] != 0) choices.push_back({wires[k], wsel[k]});
      core::apply_wire_widths(sized, choices, widths);
      best = std::max(best, elmore::analyze(sized, a, kOne).worst_slack);
      return;
    }
    buf_rec(i + 1);
    a.place(sites[i], lib::BufferId{0});
    buf_rec(i + 1);
    a.remove(sites[i]);
  };
  std::function<void(std::size_t)> wire_rec = [&](std::size_t k) {
    if (k == wires.size()) {
      buf_rec(0);
      return;
    }
    for (std::size_t w = 0; w < widths.size(); ++w) {
      wsel[k] = w;
      wire_rec(k + 1);
    }
    wsel[k] = 0;
  };
  wire_rec(0);

  core::VgOptions opt;
  opt.noise_constraints = false;
  opt.wire_widths = widths;
  const auto res = core::optimize(t, kOne, opt);
  EXPECT_NEAR(res.slack, best, std::abs(best) * 1e-9);
}

TEST(WireSizing, BaseWidthNotRecorded) {
  auto t = net(6000.0, 500.0);
  core::VgOptions opt;
  opt.noise_constraints = false;
  opt.wire_widths = lib::default_wire_widths();
  const auto res = core::optimize(t, kLib, opt);
  for (const auto& w : res.wire_widths) EXPECT_NE(w.width, 0u);
}

TEST(WireSizing, PerCountCarriesWireChoices) {
  auto t = net(9000.0, 750.0);
  core::VgOptions opt;
  opt.noise_constraints = false;
  opt.max_buffers = 4;
  opt.wire_widths = lib::default_wire_widths();
  const auto res = core::optimize(t, kLib, opt);
  for (const auto& cb : res.per_count) {
    auto sized = t;
    core::apply_wire_widths(sized, cb.wires, opt.wire_widths);
    const auto timing =
        elmore::analyze(sized, core::assignment_for(cb.plan), kLib);
    EXPECT_NEAR(cb.slack, timing.worst_slack, 1e-13) << cb.count;
  }
}

}  // namespace
