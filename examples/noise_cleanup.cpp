// Noise cleanup of non-critical nets (Problem 1, Algorithms 1 and 2).
//
//   $ ./noise_cleanup
//
// The scenario from the paper's Section III: nets that are not timing-
// critical but violate noise. Algorithm 1 repairs a bus of long two-pin
// wires with the provably minimal number of buffers at their Theorem-1
// maximal positions; Algorithm 2 repairs a multi-sink control tree.
#include <cstdio>

#include "core/alg1_single_sink.hpp"
#include "core/alg2_multi_sink.hpp"
#include "core/theory.hpp"
#include "noise/devgan.hpp"
#include "steiner/builders.hpp"
#include "steiner/steiner.hpp"
#include "util/units.hpp"

namespace {

using namespace nbuf;
using namespace nbuf::units;

rct::SinkInfo sink_named(const char* name) {
  rct::SinkInfo s;
  s.name = name;
  s.cap = 12.0 * fF;
  s.noise_margin = 0.8 * V;
  return s;
}

}  // namespace

int main() {
  const lib::Technology tech = lib::default_technology();
  const lib::BufferLibrary library = lib::default_library();

  // --- Part 1: a 64-bit bus, each bit an 11 mm two-pin wire --------------
  std::printf("== bus repair with Algorithm 1 ==\n");
  const lib::BufferId chosen = core::noise_buffer_choice(library);
  std::printf("insertion type: %s (smallest output resistance)\n",
              library.at(chosen).name.c_str());
  const auto span = core::critical_length(
      library.at(chosen).resistance, tech.wire_res_per_um,
      tech.coupling_current_per_um(), 0.8 * V, 0.0);
  std::printf("Theorem-1 span between buffers: %.0f um\n", *span);

  std::size_t total_buffers = 0;
  for (int bit = 0; bit < 64; ++bit) {
    rct::RoutingTree wire = steiner::make_two_pin(
        11000.0, rct::Driver{"bus_drv", 180.0, 25.0 * ps},
        sink_named(("bus[" + std::to_string(bit) + "]").c_str()), tech);
    const auto fixed = core::avoid_noise_single_sink(wire, library);
    total_buffers += fixed.buffer_count;
    if (!noise::analyze(fixed.tree, fixed.buffers, library).clean()) {
      std::printf("bit %d NOT clean — bug!\n", bit);
      return 1;
    }
  }
  std::printf("64 bits repaired with %zu buffers (%.1f per bit)\n\n",
              total_buffers, static_cast<double>(total_buffers) / 64.0);

  // --- Part 2: a 9-sink control tree with Algorithm 2 --------------------
  std::printf("== control-tree repair with Algorithm 2 ==\n");
  std::vector<steiner::PinSpec> pins;
  const double xs[] = {5200, 6100, 7400, 6800, 5900, 8000, 7100, 6400, 5500};
  const double ys[] = {300, 1800, 900, 2600, 3500, 1400, 3900, 500, 2200};
  for (int i = 0; i < 9; ++i) {
    steiner::PinSpec p;
    p.at = {xs[i], ys[i]};
    p.info = sink_named(("ctl" + std::to_string(i)).c_str());
    pins.push_back(p);
  }
  rct::RoutingTree ctl = steiner::build_tree(
      {0, 0}, rct::Driver{"ctl_drv", 220.0, 30.0 * ps}, pins, tech);

  const auto before = noise::analyze_unbuffered(ctl);
  std::printf("before: %zu of %zu sinks violate (worst slack %.3f V)\n",
              before.violation_count, ctl.sink_count(), before.worst_slack);

  const auto fixed = core::avoid_noise_multi_sink(ctl, library);
  const auto after = noise::analyze(fixed.tree, fixed.buffers, library);
  std::printf("after : %zu violations with %zu buffers "
              "(%zu candidates explored, %zu merge forks)\n",
              after.violation_count, fixed.buffer_count,
              fixed.stats.candidates_created, fixed.stats.forks);
  return after.clean() ? 0 : 1;
}
