// Timing closure with noise constraints (Problems 2 and 3, Algorithm 3).
//
//   $ ./timing_closure
//
// A timing-critical 12 mm net: sweep the allowed buffer count and print the
// delay/buffers tradeoff curve for DelayOpt(k) and BuffOpt, then let the
// Problem-3 objective pick the cheapest solution that meets both the
// required arrival time and the noise margins.
#include <cstdio>

#include "core/tool.hpp"
#include "steiner/builders.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace nbuf;
  using namespace nbuf::units;

  const lib::Technology tech = lib::default_technology();
  const lib::BufferLibrary library = lib::default_library();

  rct::SinkInfo sink;
  sink.name = "fpu_operand";
  sink.cap = 20.0 * fF;
  sink.noise_margin = 0.8 * V;
  sink.required_arrival = 1.5 * ns;
  rct::RoutingTree net = steiner::make_two_pin(
      12000.0, rct::Driver{"issue_q", 120.0, 40.0 * ps}, sink, tech);

  // Tradeoff curve: best delay at each exact buffer count, with and without
  // noise constraints (the Lillis count-indexed extension makes this one DP
  // run per mode).
  core::ToolOptions opt;
  opt.vg.max_buffers = 8;
  opt.vg.noise_constraints = false;
  const auto delay_curve = core::run(net, library, opt);
  opt.vg.noise_constraints = true;
  const auto noise_curve = core::run(net, library, opt);

  util::Table table({"k", "DelayOpt(k) delay", "BuffOpt(k) delay",
                     "noise-clean?"});
  for (const auto& d : delay_curve.vg.per_count) {
    std::string buff = "-";
    std::string clean = "no candidate";
    for (const auto& b : noise_curve.vg.per_count) {
      if (b.count != d.count) continue;
      const auto a = core::assignment_for(b.plan);
      const auto timing = elmore::analyze(noise_curve.tree, a, library);
      buff = util::Table::num(timing.max_delay / ps, 1) + " ps";
      clean = "yes";
    }
    const auto a = core::assignment_for(d.plan);
    const auto timing = elmore::analyze(delay_curve.tree, a, library);
    table.add_row({std::to_string(d.count),
                   util::Table::num(timing.max_delay / ps, 1) + " ps", buff,
                   clean});
  }
  std::printf("%s\n", table.render().c_str());

  // Problem 3: fewest buffers meeting RAT and noise.
  const auto closed = core::run_buffopt(net, library);
  std::printf("problem 3: %zu buffers, slack %.1f ps, noise %s\n",
              closed.vg.buffer_count, closed.vg.slack / ps,
              closed.noise_after.clean() ? "clean" : "VIOLATED");
  return closed.vg.feasible && closed.vg.timing_met ? 0 : 1;
}
