// Explicit multi-aggressor coupling (Section II-B, Fig. 2) and the eq. 17
// separation rule.
//
//   $ ./aggressor_study
//
// Post-routing scenario: the victim's neighbors are known. Two aggressors
// overlap different stretches of a 6 mm victim; the wire is segmented so
// every segment is fully coupled to a fixed aggressor set (Fig. 2), noise
// is analyzed, buffers are inserted where needed, and finally eq. 17 tells
// the router how far an aggressor must be moved to avoid the buffer
// entirely.
#include <cstdio>

#include "core/alg1_single_sink.hpp"
#include "core/theory.hpp"
#include "noise/coupling.hpp"
#include "noise/devgan.hpp"
#include "steiner/builders.hpp"
#include "util/units.hpp"

int main() {
  using namespace nbuf;
  using namespace nbuf::units;

  lib::Technology tech = lib::default_technology();
  const lib::BufferLibrary library = lib::default_library();

  rct::SinkInfo sink;
  sink.name = "dyn_latch_in";  // dynamic logic: noise sensitive
  sink.cap = 8.0 * fF;
  sink.noise_margin = 0.55 * V;
  rct::RoutingTree victim = steiner::make_two_pin(
      6000.0, rct::Driver{"drv", 200.0, 30.0 * ps}, sink, tech);

  // Replace the estimation-mode blanket coupling with the two real
  // aggressors: a fast clock spur over [500, 2800] µm and a bus bit over
  // [2200, 5600] µm (they overlap in [2200, 2800]).
  const rct::NodeId wire_node = victim.sinks().front().node;
  {
    rct::Wire w = victim.node(wire_node).parent_wire;
    w.coupling_current = 0.0;
    victim.set_parent_wire(wire_node, w);
  }
  const std::vector<noise::Aggressor> aggressors = {
      {"clk_spur", 1.8 / (0.10 * ns), 0.45},
      {"bus_bit", 1.8 / (0.25 * ns), 0.60},
  };
  const auto segments = noise::apply_coupling(
      victim, wire_node, aggressors,
      {{0, 500.0, 2800.0}, {1, 2200.0, 5600.0}});
  std::printf("victim segmented into %zu coupling regions\n",
              segments.size());

  const auto before = noise::analyze_unbuffered(victim);
  std::printf("noise at sink: %.3f V vs margin %.2f V -> %s\n",
              before.sinks[0].noise, 0.55,
              before.clean() ? "clean" : "VIOLATION");

  // Fix with Algorithm 1.
  const auto fixed = core::avoid_noise_single_sink(victim, library);
  const auto after = noise::analyze(fixed.tree, fixed.buffers, library);
  std::printf("after Algorithm 1: %zu buffer(s), %zu violation(s)\n",
              fixed.buffer_count, after.violation_count);

  // Alternative fix: how far must the bus aggressor be spaced instead?
  // lambda(d) = K/d with K calibrated so lambda = 0.6 at 1 track (0.6 µm).
  const double k_geom = 0.60 * 0.6;
  const auto separation = core::required_separation(
      200.0, tech.wire_res_per_um, tech.wire_cap_per_um, k_geom,
      1.8 / (0.25 * ns), 0.55, 0.0, 3400.0);
  if (separation)
    std::printf("eq. 17: spacing the bus aggressor %.2f um away would also "
                "satisfy the margin\n",
                *separation);
  return after.clean() ? 0 : 1;
}
