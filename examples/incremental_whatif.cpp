// Incremental what-if noise queries inside an interactive-style loop.
//
//   $ ./incremental_whatif
//
// A router-integration scenario (the paper's motivation for closed-form
// metrics): given a violating net, scan every legal buffer site with O(1)
// incremental queries — no re-analysis per candidate — and report which
// single-buffer repairs work, then cross-check the chosen one against the
// full analyzer. This is the query pattern iterative single-buffer methods
// (Kannan et al.; Lin/Marek-Sadowska) run in their inner loop.
#include <cstdio>

#include "noise/devgan.hpp"
#include "noise/incremental.hpp"
#include "seg/segment.hpp"
#include "steiner/builders.hpp"
#include "util/units.hpp"

int main() {
  using namespace nbuf;
  using namespace nbuf::units;

  const lib::Technology tech = lib::default_technology();
  const lib::BufferLibrary library = lib::default_library();

  rct::SinkInfo sink;
  sink.name = "rx";
  sink.cap = 12.0 * fF;
  sink.noise_margin = 0.8 * V;
  rct::RoutingTree net = steiner::make_two_pin(
      5000.0, rct::Driver{"tx", 200.0, 30 * ps}, sink, tech);
  seg::segment(net, {250.0});  // 19 candidate sites

  const auto before = noise::analyze_unbuffered(net);
  std::printf("unbuffered: noise %.3f V vs 0.80 V margin (%s)\n",
              before.sinks[0].noise,
              before.clean() ? "clean" : "VIOLATION");

  const noise::IncrementalNoise inc(net);
  const auto& buf = library.at(library.strongest());
  std::printf("\nscanning %zu sites with O(1) queries (buffer %s):\n",
              net.node_count() - 2, buf.name.c_str());
  std::printf("%-8s %-14s %-16s %-10s\n", "site", "I(v) (mA)",
              "buffer-input (V)", "fixes?");
  rct::NodeId chosen;
  for (auto v : net.preorder()) {
    const auto& n = net.node(v);
    if (n.kind != rct::NodeKind::Internal || !n.buffer_allowed) continue;
    const bool fixes =
        inc.single_buffer_fixes(v, buf.resistance, buf.noise_margin);
    std::printf("%-8u %-14.3f %-16.3f %s\n", v.value(),
                inc.current(v) / mA,
                inc.noise_with_subtree_decoupled(v, v),
                fixes ? "yes" : "no");
    if (fixes && !chosen.valid()) chosen = v;
  }

  if (!chosen.valid()) {
    std::printf("\nno single-buffer fix exists on this net\n");
    return 1;
  }
  rct::BufferAssignment a;
  a.place(chosen, library.strongest());
  const auto after = noise::analyze(net, a, library);
  std::printf("\nplacing at site %u -> full re-analysis: %zu violation(s), "
              "worst slack %+.3f V\n",
              chosen.value(), after.violation_count, after.worst_slack);
  return after.clean() ? 0 : 1;
}
