// Multi-source nets: noise-safe repeater insertion for a bidirectional bus
// (the Lillis DAC'97 extension the paper cites).
//
//   $ ./bidirectional_bus
//
// A 14 mm data line between a CPU core and a DMA engine, with a mid-route
// IO tap. Any of the three can drive; the inserted repeaters must keep
// every sink under its 0.8 V noise margin in every operating mode.
#include <cstdio>

#include "core/multisource.hpp"
#include "rct/reroot.hpp"
#include "sim/golden.hpp"
#include "steiner/builders.hpp"
#include "util/units.hpp"

int main() {
  using namespace nbuf;
  using namespace nbuf::units;

  const lib::Technology tech = lib::default_technology();
  const lib::BufferLibrary library = lib::default_library();

  auto wire_of = [&](double len) {
    return rct::Wire{len, tech.wire_res(len), tech.wire_cap(len),
                     tech.wire_coupling_current(len)};
  };
  auto pin = [&](const char* name, double cap) {
    rct::SinkInfo s;
    s.name = name;
    s.cap = cap;
    s.noise_margin = 0.8 * V;
    return s;
  };

  // Topology: cpu --6mm-- tap --+--8mm-- dma
  //                             +--2mm-- io
  rct::RoutingTree bus;
  const auto cpu = bus.make_source(rct::Driver{"cpu", 140.0, 30 * ps}, "cpu");
  const auto tap = bus.add_internal(cpu, wire_of(6000.0), "tap");
  const auto dma = bus.add_sink(tap, wire_of(8000.0), pin("dma", 22 * fF));
  const auto io = bus.add_sink(tap, wire_of(2000.0), pin("io", 12 * fF));

  const std::vector<core::NetMode> modes = {
      {rct::NodeId::invalid(), {}},                    // cpu drives
      {dma, rct::Driver{"dma_drv", 200.0, 40 * ps}},   // dma drives
      {io, rct::Driver{"io_drv", 300.0, 45 * ps}},     // io drives
  };

  core::MultiSourceOptions opt;
  opt.source_as_sink = pin("cpu_pin", 20 * fF);

  // Before: how bad is each mode unrepeatered?
  const auto before = core::analyze_modes(bus, {}, library, modes,
                                          opt.source_as_sink);
  const char* names[] = {"cpu drives", "dma drives", "io drives"};
  std::printf("before repeater insertion:\n");
  for (std::size_t m = 0; m < before.size(); ++m)
    std::printf("  %-11s %zu violation(s), worst slack %+.3f V\n", names[m],
                before[m].violation_count, before[m].worst_slack);

  const auto res = core::optimize_multisource(bus, library, modes, opt);
  std::printf("\ninserted %zu bidirectional repeater(s) in %zu repair "
              "round(s)\n",
              res.repeaters.size(), res.rounds + 1);

  const auto after = core::analyze_modes(res.tree, res.repeaters, library,
                                         modes, opt.source_as_sink);
  std::printf("after:\n");
  for (std::size_t m = 0; m < after.size(); ++m)
    std::printf("  %-11s %zu violation(s), worst slack %+.3f V\n", names[m],
                after[m].violation_count, after[m].worst_slack);

  // Independent confirmation with the golden simulator, per mode.
  const auto gopt = sim::golden_options_from(tech);
  std::size_t golden_violations =
      sim::golden_analyze(res.tree, res.repeaters, library, gopt)
          .violation_count;
  for (std::size_t m = 1; m < modes.size(); ++m) {
    const auto rr = rct::reroot(res.tree, modes[m].terminal,
                                modes[m].driver, opt.source_as_sink);
    golden_violations +=
        sim::golden_analyze(rr.tree, rct::map_assignment(res.repeaters, rr),
                            library, gopt)
            .violation_count;
  }
  std::printf("golden transient across all modes: %zu violation(s)\n",
              golden_violations);
  return res.feasible && golden_violations == 0 ? 0 : 1;
}
