// Quickstart: build a net, check noise and timing, run BuffOpt, verify.
//
//   $ ./quickstart
//
// Walks the public API end to end: construct a two-pin net in the default
// 0.25 µm-class technology, observe that it violates the 0.8 V noise margin,
// fix it with the noise-constrained Van Ginneken optimizer (BuffOpt), and
// confirm the fix with both the Devgan metric and the golden transient
// simulator.
#include <cstdio>

#include "core/tool.hpp"
#include "sim/golden.hpp"
#include "steiner/builders.hpp"
#include "util/units.hpp"

int main() {
  using namespace nbuf;
  using namespace nbuf::units;

  // 1. A 9 mm point-to-point net: driver on the left, one 15 fF sink with a
  //    0.8 V noise margin and a 1.4 ns required arrival time.
  const lib::Technology tech = lib::default_technology();
  rct::Driver driver{"core_drv", 150.0 * ohm, 30.0 * ps};
  rct::SinkInfo sink;
  sink.name = "alu_in";
  sink.cap = 15.0 * fF;
  sink.required_arrival = 1.4 * ns;
  sink.noise_margin = 0.8 * V;
  rct::RoutingTree net = steiner::make_two_pin(9000.0, driver, sink, tech);

  // 2. Before optimization: the Devgan metric flags a (large) violation.
  const auto before = noise::analyze_unbuffered(net);
  std::printf("before: noise %.3f V vs margin 0.80 V -> %s\n",
              before.sinks[0].noise,
              before.clean() ? "clean" : "VIOLATION");

  // 3. BuffOpt: fewest buffers meeting both noise and timing.
  const lib::BufferLibrary library = lib::default_library();
  const core::ToolResult result = core::run_buffopt(net, library);
  std::printf("buffopt: inserted %zu buffer(s), slack %.1f ps\n",
              result.vg.buffer_count, result.vg.slack / ps);
  for (const auto& [node, type] : result.vg.buffers.entries())
    std::printf("  buffer %-8s at node %u\n",
                library.at(type).name.c_str(), node.value());

  // 4. Verify with the metric and with the golden transient simulator.
  std::printf("metric after : %zu violation(s), worst slack %.3f V\n",
              result.noise_after.violation_count,
              result.noise_after.worst_slack);
  const auto golden = sim::golden_analyze(
      result.tree, result.vg.buffers, library, sim::golden_options_from(tech));
  std::printf("golden after : %zu violation(s), peak %.3f V at the sink\n",
              golden.violation_count, golden.sinks[0].peak);
  std::printf("delay        : %.1f ps (was %.1f ps unbuffered)\n",
              result.timing_after.max_delay / ps,
              result.timing_before.max_delay / ps);
  return result.noise_after.clean() && golden.clean() ? 0 : 1;
}
