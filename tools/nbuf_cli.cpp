// Thin entry point; the program logic lives in cli_app.cpp so the test
// suite (tests/test_tools.cpp) can drive the same code paths in-process.
#include "cli_app.hpp"

int main(int argc, char** argv) { return nbuf::cli::cli_main(argc, argv); }
