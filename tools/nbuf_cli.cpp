// nbuf_cli — command-line front end for the buffer insertion library.
//
//   nbuf_cli <input.net> [options]
//
//   --mode M          analyze | buffopt (default) | delayopt | noise
//                     analyze:  report noise and timing, insert nothing
//                     buffopt:  Algorithm 3, fewest buffers meeting noise
//                               and timing (Problem 3)
//                     delayopt: delay-only Van Ginneken baseline
//                     noise:    Algorithm 2, minimal buffers for noise only
//                               (Problem 1)
//   --max-buffers K   count cap for buffopt/delayopt (default 24)
//   --segment UM      wire segmenting granularity in µm (default 500)
//   --wire-sizing     enable simultaneous 1x/2x/4x wire sizing
//   --golden          additionally run the transient golden noise analysis
//   -o FILE           write the buffered net back out as a .net file
//
// Exit status: 0 when the requested optimization succeeded and the result
// is noise-clean, 1 otherwise (including analyze mode finding violations).
#include <cstdio>
#include <cstring>
#include <string>

#include "core/alg2_multi_sink.hpp"
#include "core/tool.hpp"
#include "io/netfile.hpp"
#include "sim/golden.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace nbuf;
using namespace nbuf::units;

struct Args {
  std::string input;
  std::string output;
  std::string mode = "buffopt";
  std::size_t max_buffers = 24;
  double segment = 500.0;
  bool wire_sizing = false;
  bool golden = false;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <input.net> [--mode analyze|buffopt|delayopt|"
               "noise] [--max-buffers K] [--segment UM] [--wire-sizing] "
               "[--golden] [-o out.net]\n",
               argv0);
  return 2;
}

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (a == "--mode") {
      const char* v = value();
      if (!v) return false;
      args.mode = v;
    } else if (a == "--max-buffers") {
      const char* v = value();
      if (!v) return false;
      args.max_buffers = static_cast<std::size_t>(std::stoul(v));
    } else if (a == "--segment") {
      const char* v = value();
      if (!v) return false;
      args.segment = std::stod(v);
    } else if (a == "--wire-sizing") {
      args.wire_sizing = true;
    } else if (a == "--golden") {
      args.golden = true;
    } else if (a == "-o") {
      const char* v = value();
      if (!v) return false;
      args.output = v;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", a.c_str());
      return false;
    } else if (args.input.empty()) {
      args.input = a;
    } else {
      return false;
    }
  }
  return !args.input.empty();
}

void print_noise(const char* label, const noise::NoiseReport& rep) {
  std::printf("%-22s %zu violation(s), worst slack %+.3f V\n", label,
              rep.violation_count, rep.worst_slack);
}

void print_timing(const char* label, const elmore::TimingReport& rep) {
  std::printf("%-22s max delay %.1f ps, worst slack %+.1f ps\n", label,
              rep.max_delay / ps, rep.worst_slack / ps);
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) return usage(argv[0]);

  const lib::BufferLibrary library = lib::default_library();
  io::NetFile net;
  try {
    net = io::read_net_file(args.input, library);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", args.input.c_str(), e.what());
    return 2;
  }
  std::printf("net %s: %zu nodes, %zu sinks, %.2f mm, %.2f pF\n",
              net.name.empty() ? args.input.c_str() : net.name.c_str(),
              net.tree.node_count(), net.tree.sink_count(),
              net.tree.total_wirelength() / mm, net.tree.total_cap() / pF);

  const auto gopt = net.tech ? sim::golden_options_from(*net.tech)
                             : sim::golden_options_from(
                                   lib::default_technology());

  rct::RoutingTree result_tree = net.tree;
  rct::BufferAssignment result_buffers = net.buffers;
  bool clean = false;

  if (args.mode == "analyze") {
    const auto nrep = noise::analyze(net.tree, net.buffers, library);
    const auto trep = elmore::analyze(net.tree, net.buffers, library);
    print_noise("devgan metric:", nrep);
    print_timing("elmore timing:", trep);
    clean = nrep.clean();
  } else if (args.mode == "noise") {
    auto binary = net.tree;
    binary.binarize();
    const auto res = core::avoid_noise_multi_sink(binary, library);
    std::printf("algorithm 2: inserted %zu buffer(s)\n", res.buffer_count);
    const auto nrep = noise::analyze(res.tree, res.buffers, library);
    print_noise("devgan metric:", nrep);
    result_tree = res.tree;
    result_buffers = res.buffers;
    clean = nrep.clean();
  } else if (args.mode == "buffopt" || args.mode == "delayopt") {
    core::ToolOptions opt;
    opt.segmenting.max_segment_length = args.segment;
    opt.vg.max_buffers = args.max_buffers;
    if (args.wire_sizing) opt.vg.wire_widths = lib::default_wire_widths();
    const core::ToolResult res =
        args.mode == "buffopt"
            ? core::run_buffopt(net.tree, library, opt)
            : core::run_delayopt(net.tree, library, args.max_buffers, opt);
    std::printf("%s: inserted %zu buffer(s)%s in %.1f ms\n",
                args.mode.c_str(), res.vg.buffer_count,
                res.vg.wire_widths.empty()
                    ? ""
                    : (", widened " +
                       std::to_string(res.vg.wire_widths.size()) +
                       " wire(s)")
                          .c_str(),
                res.optimize_seconds * 1e3);
    for (const auto& [node, type] : res.vg.buffers.entries())
      std::printf("  %-8s at node %u\n", library.at(type).name.c_str(),
                  node.value());
    print_noise("noise before:", res.noise_before);
    print_noise("noise after:", res.noise_after);
    print_timing("timing before:", res.timing_before);
    print_timing("timing after:", res.timing_after);
    result_tree = res.tree;
    if (args.wire_sizing)
      core::apply_wire_widths(result_tree, res.vg.wire_widths,
                              opt.vg.wire_widths);
    result_buffers = res.vg.buffers;
    clean = res.vg.feasible && res.noise_after.clean();
  } else {
    return usage(argv[0]);
  }

  if (args.golden) {
    const auto grep =
        sim::golden_analyze(result_tree, result_buffers, library, gopt);
    std::printf("%-22s %zu violation(s), worst slack %+.3f V\n",
                "golden transient:", grep.violation_count,
                grep.worst_slack);
    clean = clean && grep.clean();
  }

  if (!args.output.empty()) {
    io::write_net_file(args.output, net.name, result_tree, result_buffers,
                       library);
    std::printf("wrote %s\n", args.output.c_str());
  }
  return clean ? 0 : 1;
}
