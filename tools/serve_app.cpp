#include "serve_app.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli_app.hpp"
#include "opt_parse.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace nbuf::cli {

namespace {

int serve_usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port P] [--unix PATH] [--threads T] "
               "[--segment UM]\n",
               argv0);
  return kExitUsage;
}

int client_usage() {
  std::fprintf(stderr,
               "usage: nbuf_cli serve-client (--port P | --unix PATH) "
               "[--host H] [--script FILE]\n");
  return kExitUsage;
}

bool read_text_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

std::vector<std::string> tokens_of(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> t;
  std::string w;
  while (in >> w) t.push_back(w);
  return t;
}

// One script line -> one request, or an error message.
bool build_request(const std::vector<std::string>& t,
                   serve::Opcode& op, std::string& payload) {
  using serve::Opcode;
  if (t[0] == "load_lib" && t.size() == 2) {
    op = Opcode::LoadLib;
    return read_text_file(t[1], payload);
  }
  if (t[0] == "load_net" && (t.size() == 2 || t.size() == 3)) {
    op = Opcode::LoadNet;
    std::string text;
    if (!read_text_file(t[1], text)) return false;
    payload = t.size() == 3 ? "segment " + t[2] + "\n" + text : text;
    return true;
  }
  if (t[0] == "optimize" && t.size() >= 2 && t.size() % 2 == 0) {
    op = Opcode::Optimize;
    payload = "net " + t[1] + "\n";
    for (std::size_t i = 2; i + 1 < t.size(); i += 2)
      payload += t[i] + " " + t[i + 1] + "\n";
    return true;
  }
  if ((t[0] == "perturb" || t[0] == "perturb_full") && t.size() >= 3) {
    op = Opcode::Perturb;
    payload = "net " + t[1] + "\n";
    if (t[0] == "perturb_full") payload += "full 1\n";
    std::string edit;
    for (std::size_t i = 2; i < t.size(); ++i) {
      if (i > 2) edit += " ";
      edit += t[i];
    }
    payload += edit + "\n";
    return true;
  }
  if (t[0] == "signoff" && t.size() == 2) {
    op = Opcode::Signoff;
    payload = "net " + t[1] + "\n";
    return true;
  }
  if (t[0] == "stats" && t.size() == 1) {
    op = Opcode::Stats;
    return true;
  }
  if (t[0] == "shutdown" && t.size() == 1) {
    op = Opcode::Shutdown;
    return true;
  }
  std::fprintf(stderr, "bad script line: %s ...\n", t[0].c_str());
  return false;
}

}  // namespace

int serve_main(int argc, char** argv) {
  serve::ServerOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (a == "--port") {
      if (!parse_port(value(), "--port", opt.port))
        return serve_usage(argv[0]);
    } else if (a == "--unix") {
      const char* v = value();
      if (v == nullptr) return serve_usage(argv[0]);
      opt.unix_path = v;
    } else if (a == "--threads") {
      if (!parse_count(value(), "--threads", opt.threads))
        return serve_usage(argv[0]);
    } else if (a == "--segment") {
      if (!parse_number(value(), "--segment", opt.segment_um) ||
          opt.segment_um <= 0.0)
        return serve_usage(argv[0]);
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
      return serve_usage(argv[0]);
    }
  }
  serve::Server server(opt);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "start failed: %s\n", e.what());
    return kExitUsage;
  }
  if (!opt.unix_path.empty())
    std::printf("listening unix %s\n", opt.unix_path.c_str());
  else
    std::printf("listening %u\n", server.port());
  std::fflush(stdout);
  server.wait();
  return kExitClean;
}

int serve_client_main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::string unix_path;
  std::string script_path;
  std::uint16_t port = 0;
  bool have_port = false;
  // argv[1] is the matched "serve-client" token.
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (a == "--port") {
      if (!parse_port(value(), "--port", port)) return client_usage();
      have_port = true;
    } else if (a == "--host") {
      const char* v = value();
      if (v == nullptr) return client_usage();
      host = v;
    } else if (a == "--unix") {
      const char* v = value();
      if (v == nullptr) return client_usage();
      unix_path = v;
    } else if (a == "--script") {
      const char* v = value();
      if (v == nullptr) return client_usage();
      script_path = v;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
      return client_usage();
    }
  }
  // Exactly one of --port / --unix, and the port must be a real one.
  if (have_port == !unix_path.empty()) return client_usage();
  if (have_port && port == 0) return client_usage();

  std::string script;
  if (script_path.empty()) {
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), stdin)) > 0)
      script.append(buf, n);
  } else if (!read_text_file(script_path, script)) {
    return kExitUsage;
  }

  try {
    serve::Client client = unix_path.empty()
                               ? serve::Client::connect(host, port)
                               : serve::Client::connect_unix_socket(
                                     unix_path);
    bool any_error = false;
    std::istringstream lines(script);
    std::string line;
    while (std::getline(lines, line)) {
      const std::size_t hash = line.find('#');
      if (hash != std::string::npos) line.resize(hash);
      const auto t = tokens_of(line);
      if (t.empty()) continue;
      serve::Opcode op{};
      std::string payload;
      if (!build_request(t, op, payload)) return kExitUsage;
      const serve::Frame resp = client.call(op, std::move(payload));
      std::printf("%s id=%" PRIu64 "\n%s", serve::to_string(resp.op),
                  resp.request_id, resp.payload.c_str());
      if (resp.op == serve::Opcode::Error) any_error = true;
    }
    return any_error ? kExitViolations : kExitClean;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "serve-client: %s\n", e.what());
    return kExitUsage;
  }
}

}  // namespace nbuf::cli
