// The nbuf_cli program logic, exposed as a callable so tests/test_tools can
// drive the exact code paths of the binary in-process.
//
//   nbuf_cli <input.net> [options]          single-net mode (see cli_app.cpp)
//   nbuf_cli batch (--dir D | --netgen N) [options]   parallel batch mode
//   nbuf_cli signoff (--dir D | --netgen N) [options] golden-vs-metric
//                                                     verification
#pragma once

namespace nbuf::cli {

// Process exit statuses, identical across every subcommand so scripts and
// CI can tell "the tool found violations" (retry/inspect the workload)
// apart from "the invocation itself was wrong" (fix the command line).
inline constexpr int kExitClean = 0;       // ran, result clean
inline constexpr int kExitViolations = 1;  // ran, violations/infeasible
inline constexpr int kExitUsage = 2;       // usage or input errors

// Exactly main()'s contract; argv[0] is the program name.
int cli_main(int argc, char** argv);

// The `batch` / `signoff` subcommands, with argv[1] already matched by
// cli_main (exposed separately for tests).
int batch_main(int argc, char** argv);
int signoff_main(int argc, char** argv);

}  // namespace nbuf::cli
