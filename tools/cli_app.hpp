// The nbuf_cli program logic, exposed as a callable so tests/test_tools can
// drive the exact code paths of the binary in-process.
//
//   nbuf_cli <input.net> [options]          single-net mode (see cli_app.cpp)
//   nbuf_cli batch (--dir D | --netgen N) [options]   parallel batch mode
//
// Returns the process exit status: 0 on success with a clean result, 1 when
// the optimization left violations (or, in batch mode, any net infeasible or
// noisy), 2 on usage/input errors.
#pragma once

namespace nbuf::cli {

// Exactly main()'s contract; argv[0] is the program name.
int cli_main(int argc, char** argv);

// The `batch` subcommand, with argv[1] == "batch" already consumed by
// cli_main (exposed separately for tests).
int batch_main(int argc, char** argv);

}  // namespace nbuf::cli
