// The nbuf_serve daemon and the nbuf_cli serve-client program logic,
// exposed as callables so tests/test_tools can drive the exact code paths
// of the installed binaries.
//
//   nbuf_serve [--port P] [--unix PATH] [--threads T] [--segment UM]
//
//   Listens on 127.0.0.1:P (P=0 — the default — picks an ephemeral port)
//   or a Unix-domain socket and serves nbuf-rpc-v1 (docs/serving.md) until
//   a SHUTDOWN request arrives. Prints "listening <port>" (or
//   "listening unix <path>") on stdout once ready, so scripts can wait for
//   the line and read the ephemeral port back.
//
//   nbuf_cli serve-client (--port P | --unix PATH) [--host H]
//                         [--script FILE]
//
//   Runs a request script (FILE, or stdin when omitted) against a running
//   daemon and prints each response. Script lines ('#' comments allowed):
//
//     load_lib <file.lib>
//     load_net <file.net> [segment_um]
//     optimize <net> [max_buffers K] [noise 0|1] [objective slack|min_buffers]
//     perturb <net> <edit...>        one edit, e.g. scale_wire 3 1.2 1 0.9
//     perturb_full <net> <edit...>   same, then discard the cache (cold run)
//     signoff <net>
//     stats
//     shutdown
//
//   Exit status: 0 when every response succeeded, 1 when any ERROR frame
//   came back, 2 on usage/connect/script errors.
#pragma once

namespace nbuf::cli {

int serve_main(int argc, char** argv);
int serve_client_main(int argc, char** argv);

}  // namespace nbuf::cli
