// nbuf_serve — the persistent optimization daemon (docs/serving.md).
#include "serve_app.hpp"

int main(int argc, char** argv) {
  return nbuf::cli::serve_main(argc, argv);
}
