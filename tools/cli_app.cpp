// nbuf_cli — command-line front end for the buffer insertion library.
//
//   nbuf_cli <input.net> [options]
//
//   --mode M          analyze | buffopt (default) | delayopt | noise
//                     analyze:  report noise and timing, insert nothing
//                     buffopt:  Algorithm 3, fewest buffers meeting noise
//                               and timing (Problem 3)
//                     delayopt: delay-only Van Ginneken baseline
//                     noise:    Algorithm 2, minimal buffers for noise only
//                               (Problem 1)
//   --max-buffers K   count cap for buffopt/delayopt (default 24)
//   --segment UM      wire segmenting granularity in µm (default 500)
//   --wire-sizing     enable simultaneous 1x/2x/4x wire sizing
//   --golden          additionally run the transient golden noise analysis
//   --library FILE    insertion library (.lib, docs/library.md) instead of
//                     the paper's built-in 11-type library
//   -o FILE           write the buffered net back out as a .net file
//
//   nbuf_cli batch (--dir DIR | --netgen N) [options]
//
//   Runs the buffopt/delayopt pipeline over a whole workload on a worker
//   pool (see src/batch/batch.hpp; results are deterministic for any
//   thread count) and prints throughput plus aggregate noise/timing tables.
//
//   --dir DIR         optimize every *.net file in DIR
//   --netgen N        optimize N synthetic testbench nets instead
//   --seed S          netgen seed (default 9851)
//   --threads T       worker threads (default: hardware concurrency)
//   --mode M          buffopt (default) | delayopt
//   --max-buffers K   as above
//   --segment UM      as above
//   --stats           also print the aggregated VgStats counter block with
//                     per-phase DP wall times
//   --library FILE    insertion library (.lib, docs/library.md)
//   --lib-size B      generate a synthetic B-type strength ladder instead
//                     (library-size sweeps; excludes --library)
//   --lib-inverting F fraction of ladder rungs that are inverters,
//                     in [0, 1) (default 0.45, the paper library's mix)
//   --kernel K        fast (default) | reference — Van Ginneken DP kernel
//                     (reference is the pre-optimization oracle; results
//                     are bit-identical either way)
//   --trace FILE      record trace spans around the run and write Chrome
//                     Trace Event JSON (open in Perfetto / chrome://tracing;
//                     docs/observability.md) plus print a per-phase wall
//                     time breakdown table
//   --trace-level L   phase (default) | detail — detail adds the inner DP
//                     spans (per prune/merge/wire step; large traces)
//   --metrics FILE    write an nbuf-metrics-v1 JSON snapshot (batch + DP
//                     counters are bit-identical at any --threads value)
//
//   nbuf_cli signoff (--dir DIR | --netgen N) [options]
//
//   Optimizes the workload exactly like `batch`, then independently
//   re-verifies every solution three ways — golden transient simulation,
//   Devgan metric, Elmore timing (src/signoff) — and reports structured
//   violations plus metric-vs-golden pessimism statistics.
//
//   --dir/--netgen/--seed/--threads/--mode/--max-buffers/--segment/--kernel
//   --trace/--trace-level/--metrics
//                     as for `batch` (the trace covers both the optimize
//                     and the verify pass)
//   --json FILE       write the full JSON report (docs/signoff.md schema)
//   --leaves          include per-leaf rows in the JSON (large)
//   --tol-noise MV    noise-slack grace in millivolt (default 0 = exact)
//   --tol-timing PS   timing-slack grace in picoseconds (default 0)
//   --tol-bound MV    slop on the metric>=golden bound check (default 1e-6)
//   --convergence     re-simulate every stage at dt/2 and flag stages whose
//                     peaks moved (golden step-size sanity check)
//
// Exit status (kExit* in cli_app.hpp): 0 when the run is clean (batch /
// signoff: every net), 1 when violations were found (including analyze
// mode), 2 on usage or input errors — so CI scripts can distinguish "the
// design is bad" from "the invocation is bad".
#include "cli_app.hpp"

#include "serve_app.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>

#include "batch/batch.hpp"
#include "core/alg2_multi_sink.hpp"
#include "core/tool.hpp"
#include "io/libfile.hpp"
#include "io/netfile.hpp"
#include "obs/export.hpp"
#include "opt_parse.hpp"
#include "sim/golden.hpp"
#include "signoff/workload.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace nbuf::cli {

namespace {

using namespace nbuf;
using namespace nbuf::units;

struct Args {
  std::string input;
  std::string output;
  std::string mode = "buffopt";
  std::string library_path;  // empty = default_library()
  std::size_t max_buffers = 24;
  double segment = 500.0;
  bool wire_sizing = false;
  bool golden = false;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <input.net> [--mode analyze|buffopt|delayopt|"
               "noise] [--max-buffers K] [--segment UM] [--wire-sizing] "
               "[--golden] [--library FILE] [-o out.net]\n"
               "       %s batch (--dir DIR | --netgen N) [--seed S] "
               "[--threads T] [--mode buffopt|delayopt] [--max-buffers K] "
               "[--segment UM] [--stats] [--kernel fast|reference] "
               "[--library FILE | --lib-size B [--lib-inverting F]] "
               "[--trace FILE] [--trace-level phase|detail] "
               "[--metrics FILE]\n"
               "       %s signoff (--dir DIR | --netgen N) [batch options] "
               "[--json FILE] [--leaves] [--tol-noise MV] [--tol-timing PS] "
               "[--tol-bound MV] [--convergence]\n"
               "       %s serve-client (--port P | --unix PATH) [--host H] "
               "[--script FILE]\n",
               argv0, argv0, argv0, argv0);
  return kExitUsage;
}

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (a == "--mode") {
      const char* v = value();
      if (!v) return false;
      args.mode = v;
    } else if (a == "--max-buffers") {
      if (!parse_count(value(), "--max-buffers", args.max_buffers))
        return false;
    } else if (a == "--segment") {
      if (!parse_number(value(), "--segment", args.segment)) return false;
    } else if (a == "--wire-sizing") {
      args.wire_sizing = true;
    } else if (a == "--golden") {
      args.golden = true;
    } else if (a == "--library") {
      const char* v = value();
      if (!v) return false;
      args.library_path = v;
    } else if (a == "-o") {
      const char* v = value();
      if (!v) return false;
      args.output = v;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", a.c_str());
      return false;
    } else if (args.input.empty()) {
      args.input = a;
    } else {
      return false;
    }
  }
  if (args.max_buffers == 0) {
    std::fprintf(stderr, "--max-buffers must be at least 1\n");
    return false;
  }
  if (args.segment <= 0.0) {
    std::fprintf(stderr, "--segment must be positive\n");
    return false;
  }
  return !args.input.empty();
}

void print_noise(const char* label, const noise::NoiseReport& rep) {
  std::printf("%-22s %zu violation(s), worst slack %+.3f V\n", label,
              rep.violation_count, rep.worst_slack);
}

void print_timing(const char* label, const elmore::TimingReport& rep) {
  std::printf("%-22s max delay %.1f ps, worst slack %+.1f ps\n", label,
              rep.max_delay / ps, rep.worst_slack / ps);
}

struct BatchArgs {
  std::string dir;
  std::size_t netgen_count = 0;
  std::uint64_t seed = 9851;
  std::size_t threads = 0;
  std::string mode = "buffopt";
  std::size_t max_buffers = 24;
  double segment = 500.0;
  bool stats = false;
  std::string kernel = "fast";
  std::string library_path;          // .lib file (empty = default/ladder)
  std::size_t lib_size = 0;          // >0: synthetic ladder of this size
  double lib_inverting = 0.45;       // ladder inverter fraction
  std::string trace;                 // Chrome trace JSON path (empty = off)
  std::string trace_level = "phase"; // phase | detail
  std::string metrics;               // nbuf-metrics-v1 JSON path
};

// Options only the signoff subcommand accepts, on top of BatchArgs.
struct SignoffArgs {
  std::string json;           // write the JSON report here (empty = don't)
  bool leaves = false;        // include per-leaf rows in the JSON
  double tol_noise_mv = 0.0;  // noise-slack grace (millivolt)
  double tol_timing_ps = 0.0; // timing-slack grace (picosecond)
  double tol_bound_mv = 1e-6; // metric>=golden bound slop (millivolt)
  bool convergence = false;   // golden step-size sanity check
};

// Parses `batch` options into `args`; when `so` is non-null the signoff
// extras are accepted too (argv[1] is the already-matched subcommand).
bool parse_batch_args(int argc, char** argv, BatchArgs& args,
                      SignoffArgs* so = nullptr) {
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (so && a == "--json") {
      const char* v = value();
      if (!v) return false;
      so->json = v;
    } else if (so && a == "--leaves") {
      so->leaves = true;
    } else if (so && a == "--tol-noise") {
      if (!parse_number(value(), "--tol-noise", so->tol_noise_mv))
        return false;
    } else if (so && a == "--tol-timing") {
      if (!parse_number(value(), "--tol-timing", so->tol_timing_ps))
        return false;
    } else if (so && a == "--tol-bound") {
      if (!parse_number(value(), "--tol-bound", so->tol_bound_mv))
        return false;
    } else if (so && a == "--convergence") {
      so->convergence = true;
    } else if (a == "--dir") {
      const char* v = value();
      if (!v) return false;
      args.dir = v;
    } else if (a == "--netgen") {
      if (!parse_count(value(), "--netgen", args.netgen_count)) return false;
    } else if (a == "--seed") {
      if (!parse_count64(value(), "--seed", args.seed)) return false;
    } else if (a == "--threads") {
      if (!parse_count(value(), "--threads", args.threads)) return false;
    } else if (a == "--mode") {
      const char* v = value();
      if (!v) return false;
      args.mode = v;
    } else if (a == "--max-buffers") {
      if (!parse_count(value(), "--max-buffers", args.max_buffers))
        return false;
    } else if (a == "--segment") {
      if (!parse_number(value(), "--segment", args.segment)) return false;
    } else if (a == "--stats") {
      args.stats = true;
    } else if (a == "--kernel") {
      const char* v = value();
      if (!v) return false;
      args.kernel = v;
    } else if (a == "--library") {
      const char* v = value();
      if (!v) return false;
      args.library_path = v;
    } else if (a == "--lib-size") {
      if (!parse_count(value(), "--lib-size", args.lib_size)) return false;
    } else if (a == "--lib-inverting") {
      if (!parse_number(value(), "--lib-inverting", args.lib_inverting))
        return false;
    } else if (a == "--trace") {
      const char* v = value();
      if (!v) return false;
      args.trace = v;
    } else if (a == "--trace-level") {
      const char* v = value();
      if (!v) return false;
      args.trace_level = v;
    } else if (a == "--metrics") {
      const char* v = value();
      if (!v) return false;
      args.metrics = v;
    } else {
      std::fprintf(stderr, "unknown batch option %s\n", a.c_str());
      return false;
    }
  }
  if (args.mode != "buffopt" && args.mode != "delayopt") return false;
  if (args.kernel != "fast" && args.kernel != "reference") return false;
  if (args.trace_level != "phase" && args.trace_level != "detail") {
    std::fprintf(stderr, "--trace-level must be phase or detail\n");
    return false;
  }
  if (args.max_buffers == 0) {
    std::fprintf(stderr, "--max-buffers must be at least 1\n");
    return false;
  }
  if (args.segment <= 0.0) {
    std::fprintf(stderr, "--segment must be positive\n");
    return false;
  }
  if (!args.library_path.empty() && args.lib_size > 0) {
    std::fprintf(stderr, "--library and --lib-size are exclusive\n");
    return false;
  }
  if (args.lib_inverting < 0.0 || args.lib_inverting >= 1.0) {
    std::fprintf(stderr, "--lib-inverting must be in [0, 1)\n");
    return false;
  }
  if (so && (so->tol_noise_mv < 0.0 || so->tol_timing_ps < 0.0 ||
             so->tol_bound_mv < 0.0)) {
    std::fprintf(stderr, "signoff tolerances must be nonnegative\n");
    return false;
  }
  // Exactly one workload source.
  const bool have_dir = !args.dir.empty();
  const bool have_gen = args.netgen_count > 0;
  return have_dir != have_gen;
}

// Loads the workload a batch-style subcommand names; returns kExitClean or
// the exit status to fail with.
int load_workload(const char* what, const BatchArgs& args,
                  const lib::BufferLibrary& library,
                  std::vector<batch::BatchNet>& nets) {
  try {
    if (!args.dir.empty()) {
      nets = batch::load_directory(args.dir, library);
    } else {
      netgen::TestbenchOptions gen;
      gen.net_count = args.netgen_count;
      gen.seed = args.seed;
      nets = batch::from_generated(netgen::generate_testbench(library, gen));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s workload: %s\n", what, e.what());
    return kExitUsage;
  }
  if (nets.empty()) {
    std::fprintf(stderr, "%s workload is empty\n", what);
    return kExitUsage;
  }
  return kExitClean;
}

batch::BatchOptions engine_options(const BatchArgs& args) {
  batch::BatchOptions opt;
  opt.threads = args.threads;
  opt.mode = args.mode == "buffopt" ? batch::BatchMode::BuffOpt
                                    : batch::BatchMode::DelayOpt;
  opt.max_buffers = args.max_buffers;
  opt.tool.segmenting.max_segment_length = args.segment;
  opt.tool.vg.kernel = args.kernel == "reference"
                           ? core::VgKernel::Reference
                           : core::VgKernel::Fast;
  opt.collect_stats = args.stats;
  return opt;
}

obs::TraceLevel trace_level_of(const BatchArgs& args) {
  return args.trace_level == "detail" ? obs::TraceLevel::Detail
                                      : obs::TraceLevel::Phase;
}

// Resolves the insertion library for a run: an explicit --library file, a
// generated --lib-size strength ladder, or the paper's default. Load and
// parse failures are usage errors (exit 2), same as an unreadable .net.
bool resolve_library(const std::string& path, std::size_t lib_size,
                     double lib_inverting, lib::BufferLibrary& out) {
  try {
    if (!path.empty()) {
      out = io::read_library_file(path).library;
      std::printf("library: %s (%zu types, %zu inverting)\n", path.c_str(),
                  out.size(), out.inverting_count());
    } else if (lib_size > 0) {
      out = lib::make_ladder_library(lib_size, lib_inverting);
      std::printf("library: %zu-type ladder (%zu inverting)\n", out.size(),
                  out.inverting_count());
    } else {
      out = lib::default_library();
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "library: %s\n", e.what());
    return false;
  }
  return true;
}

// Shared by --trace/--metrics/--json writers: an unwritable path is a
// usage error (exit 2), same as an unreadable input.
bool write_text_file(const std::string& path, const std::string& body) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << body << '\n';
  std::printf("wrote %s\n", path.c_str());
  return true;
}

void print_phase_table(const obs::TraceData& trace) {
  const std::vector<obs::PhaseRow> rows = obs::phase_breakdown(trace);
  if (rows.empty()) return;
  util::Table t({"span", "count", "total ms"});
  for (const obs::PhaseRow& r : rows)
    t.add_row({r.name, util::Table::integer(static_cast<long long>(r.count)),
               util::Table::num(r.seconds * 1e3, 3)});
  std::fputs(t.render().c_str(), stdout);
}

}  // namespace

int batch_main(int argc, char** argv) {
  BatchArgs args;
  if (!parse_batch_args(argc, argv, args)) return usage(argv[0]);

  lib::BufferLibrary library;
  if (!resolve_library(args.library_path, args.lib_size, args.lib_inverting,
                       library))
    return kExitUsage;
  std::vector<batch::BatchNet> nets;
  if (const int rc = load_workload("batch", args, library, nets);
      rc != kExitClean)
    return rc;

  const batch::BatchEngine engine(engine_options(args));

  std::printf("batch: %zu nets, %zu thread(s), mode %s\n", nets.size(),
              engine.thread_count(), args.mode.c_str());
  // The recording must bracket the worker pool: started before the pool
  // spawns, stopped after it joins (src/obs/trace.hpp threading contract).
  std::optional<obs::TraceRecording> rec;
  if (!args.trace.empty()) rec.emplace(trace_level_of(args));
  const batch::BatchResult res = engine.run(nets, library);
  obs::TraceData trace;
  if (rec) {
    trace = rec->stop();
    rec.reset();
  }
  const batch::BatchSummary& s = res.summary;
  std::printf("throughput: %.1f nets/sec (wall %.3f s, dp %.3f s)\n",
              s.nets_per_second(), s.wall_seconds, s.dp_seconds);

  // Aggregate noise and timing tables over the whole workload.
  double worst_noise_before = 0.0, worst_noise_after = 0.0;
  double worst_slack_after = 0.0;
  bool first = true;
  for (const core::ToolResult& r : res.results) {
    if (first) {
      worst_noise_before = r.noise_before.worst_slack;
      worst_noise_after = r.noise_after.worst_slack;
      worst_slack_after = r.timing_after.worst_slack;
      first = false;
    } else {
      worst_noise_before =
          std::min(worst_noise_before, r.noise_before.worst_slack);
      worst_noise_after =
          std::min(worst_noise_after, r.noise_after.worst_slack);
      worst_slack_after =
          std::min(worst_slack_after, r.timing_after.worst_slack);
    }
  }
  std::printf("%-22s clean %zu/%zu, worst slack %+.3f V\n",
              "noise before:", s.noise_clean_before, s.net_count,
              worst_noise_before);
  std::printf("%-22s clean %zu/%zu, worst slack %+.3f V\n",
              "noise after:", s.noise_clean_after, s.net_count,
              worst_noise_after);
  std::printf("%-22s met %zu/%zu, worst slack %+.1f ps\n",
              "timing after:", s.timing_met, s.net_count,
              worst_slack_after / ps);
  std::printf("%-22s feasible %zu/%zu, %zu buffer(s) inserted\n",
              "solutions:", s.feasible, s.net_count, s.buffers_inserted);
  if (args.stats)
    std::printf("vgstats: %s\n", util::format(s.stats).c_str());

  if (!args.trace.empty()) {
    print_phase_table(trace);
    if (!write_text_file(args.trace, obs::chrome_trace_json(trace)))
      return kExitUsage;
  }
  if (!args.metrics.empty()) {
    obs::MetricsRegistry reg;
    batch::record_metrics(reg, s);
    if (!args.trace.empty()) obs::record_trace(reg, trace);
    if (!write_text_file(args.metrics, obs::metrics_json(reg.snapshot())))
      return kExitUsage;
  }

  const bool clean =
      s.feasible == s.net_count && s.noise_clean_after == s.net_count;
  return clean ? kExitClean : kExitViolations;
}

int signoff_main(int argc, char** argv) {
  BatchArgs args;
  SignoffArgs so;
  if (!parse_batch_args(argc, argv, args, &so)) return usage(argv[0]);

  lib::BufferLibrary library;
  if (!resolve_library(args.library_path, args.lib_size, args.lib_inverting,
                       library))
    return kExitUsage;
  std::vector<batch::BatchNet> nets;
  if (const int rc = load_workload("signoff", args, library, nets);
      rc != kExitClean)
    return rc;

  const batch::BatchEngine engine(engine_options(args));
  std::printf("signoff: %zu nets, %zu thread(s), mode %s\n", nets.size(),
              engine.thread_count(), args.mode.c_str());
  // One recording spans both passes, so the trace shows optimize and
  // verify side by side; started/stopped outside both worker pools.
  std::optional<obs::TraceRecording> rec;
  if (!args.trace.empty()) rec.emplace(trace_level_of(args));
  const batch::BatchResult res = engine.run(nets, library);
  std::printf("%-22s %.1f nets/sec (wall %.3f s)\n",
              "optimize:", res.summary.nets_per_second(),
              res.summary.wall_seconds);

  signoff::WorkloadOptions wopt;
  wopt.threads = args.threads;
  wopt.signoff.golden = sim::golden_options_from(lib::default_technology());
  wopt.signoff.golden.check_convergence = so.convergence;
  wopt.signoff.tol.noise_slack = so.tol_noise_mv * mV;
  wopt.signoff.tol.timing_slack = so.tol_timing_ps * ps;
  wopt.signoff.tol.bound_slop = so.tol_bound_mv * mV;
  const signoff::WorkloadSignoff w =
      signoff::run_workload(nets, res.results, library, wopt);
  obs::TraceData trace;
  if (rec) {
    trace = rec->stop();
    rec.reset();
  }

  std::printf("%-22s %.1f nets/sec (wall %.3f s)\n",
              "verify:", w.nets_per_second(), w.wall_seconds);
  std::printf("%-22s %zu/%zu net(s) clean, %zu violation record(s)\n",
              "signoff:", w.passed, w.net_count, w.violations);
  for (std::size_t k = 0; k < signoff::kViolationKinds; ++k)
    if (w.by_kind[k] > 0)
      std::printf("  %-20s %zu\n",
                  signoff::to_string(static_cast<signoff::ViolationKind>(k)),
                  w.by_kind[k]);
  std::printf("%-22s metric-clean %zu, golden-clean %zu%s\n",
              "theorem 1:", w.feasible, w.feasible_golden_clean,
              w.feasible_golden_clean == w.feasible ? " (bound held)"
                                                    : " (BOUND BROKEN)");
  std::printf("%-22s golden %+.3f V, metric %+.3f V, timing %+.1f ps\n",
              "worst slack:", w.worst_golden_slack, w.worst_metric_slack,
              w.worst_timing_slack / ps);
  if (w.pessimism.samples > 0) {
    std::printf("%-22s %zu sample(s), min %.2f / mean %.2f / max %.2f\n",
                "pessimism ratio:", w.pessimism.samples, w.pessimism.min,
                w.pessimism.mean(), w.pessimism.max);
    util::Table t({"metric/golden", "leaves"});
    for (std::size_t b = 0; b < signoff::PessimismStats::kBinCount; ++b) {
      if (w.pessimism.bins[b] == 0) continue;
      // bin 0 holds bound violations; bin b>=1 holds [1+(b-1)w, 1+bw).
      const double lo = 1.0 + static_cast<double>(b - 1) *
                                  signoff::PessimismStats::kBinWidth;
      char range[48];
      if (b == 0)
        std::snprintf(range, sizeof range, "< 1.00  (violation)");
      else if (b + 1 == signoff::PessimismStats::kBinCount)
        std::snprintf(range, sizeof range, ">= %.2f", lo);
      else
        std::snprintf(range, sizeof range, "%.2f - %.2f", lo,
                      lo + signoff::PessimismStats::kBinWidth);
      t.add_row({std::string(range),
                 util::Table::integer(
                     static_cast<long long>(w.pessimism.bins[b]))});
    }
    std::fputs(t.render().c_str(), stdout);
  }

  if (!args.trace.empty()) {
    print_phase_table(trace);
    if (!write_text_file(args.trace, obs::chrome_trace_json(trace)))
      return kExitUsage;
  }
  if (!args.metrics.empty()) {
    obs::MetricsRegistry reg;
    batch::record_metrics(reg, res.summary);
    signoff::record_metrics(reg, w);
    if (!args.trace.empty()) obs::record_trace(reg, trace);
    if (!write_text_file(args.metrics, obs::metrics_json(reg.snapshot())))
      return kExitUsage;
  }

  if (!so.json.empty()) {
    if (!write_text_file(so.json, signoff::to_json(w, so.leaves)))
      return kExitUsage;
  }

  std::printf("verdict: %s\n", w.pass() ? "PASS" : "FAIL");
  return w.pass() ? kExitClean : kExitViolations;
}

int cli_main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "batch") == 0)
    return batch_main(argc, argv);
  if (argc >= 2 && std::strcmp(argv[1], "signoff") == 0)
    return signoff_main(argc, argv);
  if (argc >= 2 && std::strcmp(argv[1], "serve-client") == 0)
    return serve_client_main(argc, argv);

  Args args;
  if (!parse_args(argc, argv, args)) return usage(argv[0]);

  lib::BufferLibrary library;
  if (!resolve_library(args.library_path, 0, 0.0, library))
    return kExitUsage;
  io::NetFile net;
  try {
    net = io::read_net_file(args.input, library);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", args.input.c_str(), e.what());
    return kExitUsage;
  }
  std::printf("net %s: %zu nodes, %zu sinks, %.2f mm, %.2f pF\n",
              net.name.empty() ? args.input.c_str() : net.name.c_str(),
              net.tree.node_count(), net.tree.sink_count(),
              net.tree.total_wirelength() / mm, net.tree.total_cap() / pF);

  const auto gopt = net.tech ? sim::golden_options_from(*net.tech)
                             : sim::golden_options_from(
                                   lib::default_technology());

  rct::RoutingTree result_tree = net.tree;
  rct::BufferAssignment result_buffers = net.buffers;
  bool clean = false;

  if (args.mode == "analyze") {
    const auto nrep = noise::analyze(net.tree, net.buffers, library);
    const auto trep = elmore::analyze(net.tree, net.buffers, library);
    print_noise("devgan metric:", nrep);
    print_timing("elmore timing:", trep);
    clean = nrep.clean();
  } else if (args.mode == "noise") {
    auto binary = net.tree;
    binary.binarize();
    const auto res = core::avoid_noise_multi_sink(binary, library);
    std::printf("algorithm 2: inserted %zu buffer(s)\n", res.buffer_count);
    const auto nrep = noise::analyze(res.tree, res.buffers, library);
    print_noise("devgan metric:", nrep);
    result_tree = res.tree;
    result_buffers = res.buffers;
    clean = nrep.clean();
  } else if (args.mode == "buffopt" || args.mode == "delayopt") {
    core::ToolOptions opt;
    opt.segmenting.max_segment_length = args.segment;
    opt.vg.max_buffers = args.max_buffers;
    if (args.wire_sizing) opt.vg.wire_widths = lib::default_wire_widths();
    const core::ToolResult res =
        args.mode == "buffopt"
            ? core::run_buffopt(net.tree, library, opt)
            : core::run_delayopt(net.tree, library, args.max_buffers, opt);
    std::printf("%s: inserted %zu buffer(s)%s in %.1f ms\n",
                args.mode.c_str(), res.vg.buffer_count,
                res.vg.wire_widths.empty()
                    ? ""
                    : (", widened " +
                       std::to_string(res.vg.wire_widths.size()) +
                       " wire(s)")
                          .c_str(),
                res.optimize_seconds * 1e3);
    for (const auto& [node, type] : res.vg.buffers.entries())
      std::printf("  %-8s at node %u\n", library.at(type).name.c_str(),
                  node.value());
    print_noise("noise before:", res.noise_before);
    print_noise("noise after:", res.noise_after);
    print_timing("timing before:", res.timing_before);
    print_timing("timing after:", res.timing_after);
    result_tree = res.tree;
    if (args.wire_sizing)
      core::apply_wire_widths(result_tree, res.vg.wire_widths,
                              opt.vg.wire_widths);
    result_buffers = res.vg.buffers;
    clean = res.vg.feasible && res.noise_after.clean();
  } else {
    return usage(argv[0]);
  }

  if (args.golden) {
    const auto grep =
        sim::golden_analyze(result_tree, result_buffers, library, gopt);
    std::printf("%-22s %zu violation(s), worst slack %+.3f V\n",
                "golden transient:", grep.violation_count,
                grep.worst_slack);
    clean = clean && grep.clean();
  }

  if (!args.output.empty()) {
    io::write_net_file(args.output, net.name, result_tree, result_buffers,
                       library);
    std::printf("wrote %s\n", args.output.c_str());
  }
  return clean ? kExitClean : kExitViolations;
}

}  // namespace nbuf::cli
