// nbuf_gen — exports the synthetic Section-V testbench as .net files so the
// workload can be inspected, rerun with nbuf_cli, or consumed by other
// tools.
//
//   nbuf_gen <output-dir> [--count N] [--seed S]
//
// Writes net0000.net .. netNNNN.net plus an index.tsv with per-net summary
// columns (sinks, wirelength µm, total cap fF, metric violation yes/no).
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "io/netfile.hpp"
#include "netgen/netgen.hpp"
#include "noise/devgan.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace nbuf;
  using namespace nbuf::units;

  std::string out_dir;
  netgen::TestbenchOptions opt;
  opt.net_count = 500;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--count" && i + 1 < argc) {
      opt.net_count = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (a == "--seed" && i + 1 < argc) {
      opt.seed = std::stoull(argv[++i]);
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", a.c_str());
      return 2;
    } else if (out_dir.empty()) {
      out_dir = a;
    } else {
      std::fprintf(stderr,
                   "usage: %s <output-dir> [--count N] [--seed S]\n",
                   argv[0]);
      return 2;
    }
  }
  if (out_dir.empty()) {
    std::fprintf(stderr, "usage: %s <output-dir> [--count N] [--seed S]\n",
                 argv[0]);
    return 2;
  }

  std::filesystem::create_directories(out_dir);
  const auto library = lib::default_library();
  const auto nets = netgen::generate_testbench(library, opt);

  std::ofstream index(out_dir + "/index.tsv");
  index << "file\tsinks\twirelength_um\ttotal_cap_ff\tmetric_violation\n";
  std::size_t violating = 0;
  for (std::size_t i = 0; i < nets.size(); ++i) {
    char fname[32];
    std::snprintf(fname, sizeof fname, "net%04zu.net", i);
    io::write_net_file(out_dir + "/" + fname, nets[i].name, nets[i].tree,
                       {}, library);
    const bool bad = !noise::analyze_unbuffered(nets[i].tree).clean();
    violating += bad;
    index << fname << '\t' << nets[i].sink_count << '\t'
          << nets[i].wirelength << '\t' << nets[i].total_cap / fF << '\t'
          << (bad ? "yes" : "no") << '\n';
  }
  std::printf("wrote %zu nets to %s (%zu with metric violations)\n",
              nets.size(), out_dir.c_str(), violating);
  return 0;
}
