// nbuf_lint rule engine — token-sequence rules over tools/lint/lexer.hpp.
//
// Nine rules enforce the project's mechanical style and determinism
// contracts (docs/quality.md has rationale and the suppression policy):
//
//   style / ownership (since PR 4):
//     sort              std::sort in src/ outside the reference kernel
//     naked-new         new/delete expressions in library code
//     iostream          #include <iostream> in library code
//     pragma-once       every header must carry #pragma once
//     no-float          `float` in noise/delay math (double only)
//
//   determinism / concurrency (this layer):
//     unordered-iter    range-for or .begin() iteration over a variable
//                       declared std::unordered_map/std::unordered_set in
//                       src/ — iteration order is unspecified
//     raw-lock          .lock()/.unlock()/.try_lock() member calls outside
//                       src/util/thread_annotations.hpp — locking goes
//                       through util::MutexLock so Clang's thread-safety
//                       analysis sees every acquisition
//     wallclock-in-core clock reads (std::chrono ...::now, time(, clock()
//                       in src/core, src/noise, src/elmore — results must
//                       not depend on time
//     mutable-global    non-const namespace-scope mutable state in src/
//
// A finding is suppressed by `nbuf-lint: allow(<rule>)` appearing inside a
// comment token that starts on the finding's line — markers inside string
// literals or on other lines are ignored.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace nbuf::lint {

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

// One file to lint. `rel_path` (repo-relative, '/' separators) selects
// which rules apply; `header_content` optionally carries the sibling
// header's text (for foo.cpp, foo.hpp) so unordered-iter can see member
// declarations the .cpp iterates over. Empty when there is none.
struct FileInput {
  std::string rel_path;
  std::string content;
  std::string header_content;
};

inline constexpr std::array<std::string_view, 9> kRuleNames = {
    "sort",           "naked-new", "iostream",
    "pragma-once",    "no-float",  "unordered-iter",
    "raw-lock",       "wallclock-in-core", "mutable-global",
};

// Runs every applicable rule over one file; findings are in line order.
[[nodiscard]] std::vector<Finding> lint_file(const FileInput& in);

}  // namespace nbuf::lint
