#include "lint/rules.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "lint/lexer.hpp"

namespace nbuf::lint {

namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

// Shared per-file state every rule reads.
struct FileView {
  const FileInput* in = nullptr;
  std::vector<Token> all;            // full token stream (with comments)
  std::vector<Token> code;           // comments removed
  std::map<std::size_t, std::vector<std::string_view>> comments_by_line;

  bool in_src = false;
  bool numeric_src = false;    // src/noise|elmore|core|sim (no-float)
  bool wallclock_src = false;  // src/core|noise|elmore (wallclock-in-core)
  bool simd_home = false;      // src/core/soa_sweeps.hpp (unchecked-simd)
  bool sort_whitelisted = false;
  bool annotation_header = false;
  bool is_header = false;

  std::vector<Finding>* findings = nullptr;

  // True when a comment starting on `line` carries the allow marker.
  [[nodiscard]] bool suppressed(std::size_t line,
                                std::string_view rule) const {
    const auto it = comments_by_line.find(line);
    if (it == comments_by_line.end()) return false;
    const std::string marker =
        std::string("nbuf-lint: allow(") + std::string(rule) + ")";
    for (const std::string_view c : it->second)
      if (c.find(marker) != std::string_view::npos) return true;
    return false;
  }

  void flag(std::size_t line, std::string_view rule, std::string message) {
    if (suppressed(line, rule)) return;
    findings->push_back(
        {in->rel_path, line, std::string(rule), std::move(message)});
  }
};

FileView make_view(const FileInput& in, std::vector<Finding>& findings) {
  FileView v;
  v.in = &in;
  v.findings = &findings;
  v.all = lex(in.content);
  v.code.reserve(v.all.size());
  for (const Token& t : v.all) {
    if (t.kind == Tok::Comment)
      v.comments_by_line[t.line].push_back(t.text);
    else
      v.code.push_back(t);
  }
  const std::string_view rel = in.rel_path;
  v.in_src = starts_with(rel, "src/");
  v.numeric_src = starts_with(rel, "src/noise/") ||
                  starts_with(rel, "src/elmore/") ||
                  starts_with(rel, "src/core/") ||
                  starts_with(rel, "src/sim/");
  v.wallclock_src = starts_with(rel, "src/core/") ||
                    starts_with(rel, "src/noise/") ||
                    starts_with(rel, "src/elmore/");
  v.simd_home = rel == "src/core/soa_sweeps.hpp";
  v.sort_whitelisted = rel == "src/core/vanginneken.cpp";
  v.annotation_header = rel == "src/util/thread_annotations.hpp";
  v.is_header = rel.size() > 4 && rel.substr(rel.size() - 4) == ".hpp";
  return v;
}

const Token* at(const std::vector<Token>& ts, std::size_t i) {
  return i < ts.size() ? &ts[i] : nullptr;
}
bool is(const Token* t, std::string_view text) {
  return t != nullptr && t->text == text;
}
bool is_ident(const Token* t, std::string_view text) {
  return t != nullptr && t->kind == Tok::Identifier && t->text == text;
}

// ---- style / ownership rules (ported from nbuf_lint v1) -----------------

void rule_pragma_once(FileView& v) {
  if (!v.is_header) return;
  const std::vector<Token>& c = v.code;
  for (std::size_t i = 0; i + 2 < c.size(); ++i)
    if (c[i].in_directive && is(&c[i], "#") && is_ident(&c[i + 1], "pragma") &&
        is_ident(&c[i + 2], "once"))
      return;
  v.flag(1, "pragma-once", "header is missing #pragma once");
}

void rule_sort(FileView& v) {
  if (!v.in_src || v.sort_whitelisted) return;
  const std::vector<Token>& c = v.code;
  for (std::size_t i = 0; i + 3 < c.size(); ++i)
    if (is_ident(&c[i], "std") && is(&c[i + 1], "::") &&
        is_ident(&c[i + 2], "sort") && is(&c[i + 3], "("))
      v.flag(c[i].line, "sort",
             "std::sort outside the reference kernel; keep lists sorted "
             "incrementally or annotate why a full sort is required");
}

void rule_naked_new(FileView& v) {
  if (!v.in_src) return;
  const std::vector<Token>& c = v.code;
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (is_ident(&c[i], "new"))
      v.flag(c[i].line, "naked-new",
             "naked new in library code; use containers or value semantics");
    if (is_ident(&c[i], "delete")) {
      // `= delete;` (deleted special member) is fine; an expression is not.
      if (i > 0 && c[i - 1].text == "=") continue;
      v.flag(c[i].line, "naked-new",
             "naked delete in library code; ownership belongs to "
             "containers or value types");
    }
  }
}

void rule_iostream(FileView& v) {
  if (!v.in_src) return;
  const std::vector<Token>& c = v.code;
  for (std::size_t i = 0; i + 4 < c.size(); ++i)
    if (c[i].in_directive && is(&c[i], "#") &&
        is_ident(&c[i + 1], "include") && is(&c[i + 2], "<") &&
        is_ident(&c[i + 3], "iostream") && is(&c[i + 4], ">"))
      v.flag(c[i].line, "iostream",
             "<iostream> in library code; printing belongs to tools/ "
             "and bench/");
}

void rule_no_float(FileView& v) {
  if (!v.numeric_src) return;
  for (const Token& t : v.code)
    if (is_ident(&t, "float"))
      v.flag(t.line, "no-float",
             "float in noise/delay math; all electrical arithmetic must "
             "be double");
}

// ---- determinism / concurrency rules ------------------------------------

// Names declared in `tokens` with std::unordered_map/unordered_set type:
// after the closing '>' of the template argument list, past any &/*/const,
// an identifier not followed by '(' is a variable (or member) name.
void collect_unordered_names(const std::vector<Token>& tokens,
                             std::set<std::string_view, std::less<>>& out) {
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (!is_ident(&tokens[i], "unordered_map") &&
        !is_ident(&tokens[i], "unordered_set"))
      continue;
    std::size_t j = i + 1;
    if (!is(at(tokens, j), "<")) continue;
    std::size_t depth = 1;
    for (++j; j < tokens.size() && depth > 0; ++j) {
      if (tokens[j].text == "<") ++depth;
      if (tokens[j].text == ">") --depth;
    }
    if (depth != 0) continue;
    while (j < tokens.size() &&
           (tokens[j].text == "&" || tokens[j].text == "*" ||
            tokens[j].text == "const"))
      ++j;
    const Token* name = at(tokens, j);
    if (name == nullptr || name->kind != Tok::Identifier) continue;
    if (is(at(tokens, j + 1), "(")) continue;  // function return type
    out.insert(name->text);
  }
}

void rule_unordered_iter(FileView& v) {
  if (!v.in_src) return;
  std::set<std::string_view, std::less<>> unordered;
  collect_unordered_names(v.code, unordered);
  // The sibling header's members are iterable from the .cpp. Its token
  // views borrow header_tokens, so keep that alive for the whole scan.
  const std::vector<Token> header_tokens = lex(v.in->header_content);
  collect_unordered_names(header_tokens, unordered);
  if (unordered.empty()) return;

  const std::vector<Token>& c = v.code;
  for (std::size_t i = 0; i + 1 < c.size(); ++i) {
    // Range-for whose range expression mentions an unordered variable.
    if (is_ident(&c[i], "for") && is(&c[i + 1], "(")) {
      std::size_t depth = 1;
      std::size_t colon = 0;
      std::size_t j = i + 2;
      for (; j < c.size() && depth > 0; ++j) {
        const std::string_view t = c[j].text;
        if (t == "(") ++depth;
        if (t == ")") --depth;
        if (depth == 1 && t == ";") break;  // classic for — no range
        if (depth == 1 && t == ":" && colon == 0) colon = j;
      }
      if (colon != 0) {
        for (std::size_t k = colon + 1; k < j; ++k)
          if (c[k].kind == Tok::Identifier &&
              unordered.count(c[k].text) != 0) {
            v.flag(c[i].line, "unordered-iter",
                   "iteration over unordered container '" +
                       std::string(c[k].text) +
                       "' — order is unspecified; drain into a sorted "
                       "vector or use an ordered container");
            break;
          }
      }
    }
    // Iterator-based traversal: name.begin() / name.cbegin().
    if (c[i].kind == Tok::Identifier && unordered.count(c[i].text) != 0 &&
        is(&c[i + 1], ".") &&
        (is_ident(at(c, i + 2), "begin") || is_ident(at(c, i + 2), "cbegin")) &&
        is(at(c, i + 3), "("))
      v.flag(c[i].line, "unordered-iter",
             "iterator over unordered container '" + std::string(c[i].text) +
                 "' — order is unspecified; drain into a sorted vector "
                 "or use an ordered container");
  }
}

void rule_raw_lock(FileView& v) {
  if (!v.in_src || v.annotation_header) return;
  const std::vector<Token>& c = v.code;
  for (std::size_t i = 0; i + 2 < c.size(); ++i) {
    if (c[i].text != "." && c[i].text != "->") continue;
    const Token* m = &c[i + 1];
    if (!is_ident(m, "lock") && !is_ident(m, "unlock") &&
        !is_ident(m, "try_lock"))
      continue;
    if (!is(&c[i + 2], "(")) continue;
    v.flag(m->line, "raw-lock",
           "raw ." + std::string(m->text) +
               "() call; take locks through util::MutexLock so the "
               "thread-safety analysis sees the acquisition");
  }
}

void rule_wallclock_in_core(FileView& v) {
  if (!v.wallclock_src) return;
  const std::vector<Token>& c = v.code;
  for (std::size_t i = 0; i < c.size(); ++i) {
    if ((is_ident(&c[i], "steady_clock") || is_ident(&c[i], "system_clock") ||
         is_ident(&c[i], "high_resolution_clock")) &&
        is(at(c, i + 1), "::") && is_ident(at(c, i + 2), "now")) {
      v.flag(c[i].line, "wallclock-in-core",
             "clock read in the numeric core; results must not depend "
             "on time");
      continue;
    }
    // C time()/clock() calls — not member calls on some object.
    if ((is_ident(&c[i], "time") || is_ident(&c[i], "clock")) &&
        is(at(c, i + 1), "(")) {
      if (i > 0 && (c[i - 1].text == "." || c[i - 1].text == "->")) continue;
      v.flag(c[i].line, "wallclock-in-core",
             "clock read in the numeric core; results must not depend "
             "on time");
    }
  }
}

// Vectorization pragmas outside their audited home. `omp simd` asserts
// iteration independence the compiler cannot check; a wrong assertion
// silently reorders floating-point work and breaks the fast kernel's
// bit-identity contract. All such sweeps live in src/core/soa_sweeps.hpp,
// where every body is elementwise by construction and the scalar-vs-SIMD
// self-differential of tests/test_soa_kernel locks the contract down —
// anywhere else under src/ the pragma is an unchecked claim.
void rule_unchecked_simd(FileView& v) {
  if (!v.in_src || v.simd_home) return;
  const std::vector<Token>& c = v.code;
  constexpr std::string_view kMsg =
      "omp simd pragma outside src/core/soa_sweeps.hpp; vectorized sweeps "
      "belong there, where the elementwise contract is enforced by the "
      "test_soa_kernel scalar-vs-SIMD self-differential";
  for (std::size_t i = 0; i < c.size(); ++i) {
    // Directive form: #pragma omp simd (with or without clauses after).
    if (c[i].in_directive && is(&c[i], "#") &&
        is_ident(at(c, i + 1), "pragma") && is_ident(at(c, i + 2), "omp") &&
        is_ident(at(c, i + 3), "simd")) {
      v.flag(c[i].line, "unchecked-simd", std::string(kMsg));
      continue;
    }
    // Operator form: _Pragma("omp simd") — what a wrapper macro like
    // NBUF_SIMD_PRAGMA expands to.
    if (is_ident(&c[i], "_Pragma") && is(at(c, i + 1), "(")) {
      const Token* s = at(c, i + 2);
      if (s != nullptr && s->kind == Tok::String &&
          s->text.find("omp simd") != std::string_view::npos)
        v.flag(c[i].line, "unchecked-simd", std::string(kMsg));
    }
  }
}

// Namespace-scope mutable state. Walks the token stream with a scope
// stack; anything inside a non-namespace brace pair (function bodies,
// classes, initializers) is skipped wholesale, so only true file/namespace
// scope statements are classified.
void rule_mutable_global(FileView& v) {
  if (!v.in_src) return;
  static constexpr std::string_view kSkipKeywords[] = {
      "using",    "typedef",  "namespace", "template", "concept",
      "friend",   "static_assert",         "extern",   "operator",
      "class",    "struct",   "union",     "enum",     "asm",
      "requires",
  };
  static constexpr std::string_view kConstKeywords[] = {"const", "constexpr",
                                                        "constinit"};
  const std::vector<Token>& c = v.code;
  std::vector<const Token*> stmt;
  bool stmt_had_braces = false;

  const auto process = [&](const std::vector<const Token*>& s,
                           bool had_braces) {
    if (s.empty()) return;
    for (const Token* t : s) {
      if (t->kind != Tok::Identifier) continue;
      for (const std::string_view k : kSkipKeywords)
        if (t->text == k) return;
      for (const std::string_view k : kConstKeywords)
        if (t->text == k) return;
    }
    std::size_t first_paren = s.size(), first_eq = s.size();
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (s[i]->text == "(" && first_paren == s.size()) first_paren = i;
      if (s[i]->text == "=" && first_eq == s.size()) first_eq = i;
    }
    // `int f(...)` / `MACRO(...)`: a '(' before any '=' is a function
    // declaration or call, not a variable — unless the statement carried
    // a brace initializer (then the '(' is inside the declarator type).
    if (!had_braces && first_paren < first_eq) return;
    const std::size_t limit = std::min(first_eq, s.size());
    for (std::size_t i = limit; i-- > 0;) {
      if (s[i]->kind != Tok::Identifier) continue;
      v.flag(s[i]->line, "mutable-global",
             "namespace-scope mutable state '" + std::string(s[i]->text) +
                 "'; pass state explicitly, make it const, or justify "
                 "with a documented allow marker");
      return;
    }
  };

  std::size_t ns_depth = 0;  // enclosing braces are all namespaces
  for (std::size_t i = 0; i < c.size(); ++i) {
    const Token& t = c[i];
    if (t.in_directive) continue;
    if (t.text == "{") {
      bool is_namespace = false;
      for (const Token* s : stmt)
        if (s->kind == Tok::Identifier && s->text == "namespace")
          is_namespace = true;
      if (is_namespace) {
        ++ns_depth;
        stmt.clear();
        continue;
      }
      // Non-namespace scope: skip to the matching close brace.
      std::size_t depth = 1;
      for (++i; i < c.size() && depth > 0; ++i) {
        if (c[i].in_directive) continue;
        if (c[i].text == "{") ++depth;
        if (c[i].text == "}") --depth;
      }
      --i;
      if (is(at(c, i + 1), ";")) {
        stmt_had_braces = true;  // brace-initialized declaration
      } else {
        stmt.clear();  // function body / type definition
        stmt_had_braces = false;
      }
      continue;
    }
    if (t.text == "}") {
      if (ns_depth > 0) --ns_depth;
      stmt.clear();
      stmt_had_braces = false;
      continue;
    }
    if (t.text == ";") {
      process(stmt, stmt_had_braces);
      stmt.clear();
      stmt_had_braces = false;
      continue;
    }
    stmt.push_back(&t);
  }
}

}  // namespace

std::vector<Finding> lint_file(const FileInput& in) {
  std::vector<Finding> findings;
  FileView v = make_view(in, findings);
  rule_pragma_once(v);
  rule_sort(v);
  rule_naked_new(v);
  rule_iostream(v);
  rule_no_float(v);
  rule_unordered_iter(v);
  rule_raw_lock(v);
  rule_wallclock_in_core(v);
  rule_unchecked_simd(v);
  rule_mutable_global(v);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

}  // namespace nbuf::lint
