// A small C++ lexer for nbuf_lint — tokens, not per-line regexes.
//
// nbuf_lint v1 scanned stripped lines with string searches; that design
// could not see raw-string literals (`R"(...)"`), string state reset at
// every newline, and suppression markers inside string literals were
// honored. The lexer fixes the class of bugs, not the instances: it
// produces a token stream with file positions, where comments, string /
// character literals (including multi-line raw strings), numbers (with
// digit separators), identifiers, and punctuation are distinct token
// kinds, and preprocessor directives (with backslash continuations) are
// flagged per token. Rules then match token sequences and suppressions
// match only inside comment tokens.
//
// The lexer is deliberately lossless and resilient: every character of
// the input is covered by some token or by skipped whitespace, and
// malformed input (unterminated literals or comments) ends the current
// token at the newline or end-of-file instead of cascading.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

namespace nbuf::lint {

enum class Tok {
  Identifier,  // keywords are identifiers too; rules compare text
  Number,      // integer / floating literal, digit separators included
  String,      // "..."  u8"..."  L"..."  R"delim(...)delim"  (any prefix)
  CharLit,     // 'x', including escapes and multi-char literals
  Comment,     // // to end of line, or /* ... */ (may span lines)
  Punct,       // one operator/punctuator; "::" and "->" are single tokens
};

struct Token {
  Tok kind = Tok::Punct;
  std::string_view text;      // exact source slice, delimiters included
  std::size_t line = 0;       // 1-based line of the token's first char
  bool in_directive = false;  // token lies on a preprocessor line
};

namespace detail {

inline bool ident_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
inline bool ident_char(char c) {
  return ident_start(c) || (c >= '0' && c <= '9');
}
inline bool digit(char c) { return c >= '0' && c <= '9'; }

// Encoding prefixes that may precede a string/char literal.
inline bool string_prefix(std::string_view id) {
  return id == "u8" || id == "u" || id == "U" || id == "L";
}
inline bool raw_string_prefix(std::string_view id) {
  return id == "R" || id == "u8R" || id == "uR" || id == "UR" || id == "LR";
}

}  // namespace detail

// Lexes `src` in one pass. The returned tokens view into `src`, which must
// outlive them.
inline std::vector<Token> lex(std::string_view src) {
  std::vector<Token> out;
  std::size_t i = 0;
  std::size_t line = 1;
  bool in_directive = false;   // inside a preprocessor directive
  bool line_has_code = false;  // non-whitespace seen on this line yet

  const auto peek = [&](std::size_t off) -> char {
    return i + off < src.size() ? src[i + off] : '\0';
  };
  const auto push = [&](Tok kind, std::size_t begin, std::size_t tok_line) {
    out.push_back(
        Token{kind, src.substr(begin, i - begin), tok_line, in_directive});
  };

  while (i < src.size()) {
    const char c = src[i];

    if (c == '\n') {
      ++line;
      ++i;
      in_directive = false;
      line_has_code = false;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
      ++i;
      continue;
    }
    // Backslash-newline: the directive (and the logical line) continues.
    if (c == '\\' && (peek(1) == '\n' || (peek(1) == '\r' && peek(2) == '\n'))) {
      i += peek(1) == '\r' ? 3 : 2;
      ++line;
      continue;
    }

    // Line comment.
    if (c == '/' && peek(1) == '/') {
      const std::size_t begin = i;
      while (i < src.size() && src[i] != '\n') ++i;
      push(Tok::Comment, begin, line);
      line_has_code = true;
      continue;
    }
    // Block comment (may span lines).
    if (c == '/' && peek(1) == '*') {
      const std::size_t begin = i;
      const std::size_t begin_line = line;
      i += 2;
      while (i < src.size() && !(src[i] == '*' && peek(1) == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      if (i < src.size()) i += 2;  // consume "*/"
      push(Tok::Comment, begin, begin_line);
      line_has_code = true;
      continue;
    }

    // A '#' that opens the line starts a preprocessor directive.
    if (c == '#' && !line_has_code) {
      in_directive = true;
      line_has_code = true;
      const std::size_t begin = i;
      ++i;
      push(Tok::Punct, begin, line);
      continue;
    }
    line_has_code = true;

    // Identifier — possibly a string/char-literal encoding prefix.
    if (detail::ident_start(c)) {
      const std::size_t begin = i;
      while (i < src.size() && detail::ident_char(src[i])) ++i;
      const std::string_view id = src.substr(begin, i - begin);
      if (detail::raw_string_prefix(id) && peek(0) == '"') {
        // Raw string: R"delim( ... )delim" — may span lines, no escapes.
        const std::size_t begin_line = line;
        ++i;  // consume '"'
        std::size_t d0 = i;
        while (i < src.size() && src[i] != '(' && src[i] != '\n') ++i;
        const std::string_view delim = src.substr(d0, i - d0);
        if (peek(0) == '(') {
          ++i;
          for (; i < src.size(); ++i) {
            if (src[i] == '\n') {
              ++line;
              continue;
            }
            if (src[i] == ')' &&
                src.compare(i + 1, delim.size(), delim) == 0 &&
                i + 1 + delim.size() < src.size() &&
                src[i + 1 + delim.size()] == '"') {
              i += delim.size() + 2;  // ")delim\""
              break;
            }
          }
        }
        out.push_back(Token{Tok::String, src.substr(begin, i - begin),
                            begin_line, in_directive});
        continue;
      }
      if ((detail::string_prefix(id) || detail::raw_string_prefix(id)) &&
          (peek(0) == '"' || peek(0) == '\'')) {
        // Prefixed ordinary literal: fall through into the quote scanner
        // below with the prefix folded into the token.
        const char quote = src[i];
        ++i;
        while (i < src.size() && src[i] != quote && src[i] != '\n') {
          if (src[i] == '\\' && i + 1 < src.size() && src[i + 1] != '\n')
            ++i;
          ++i;
        }
        if (i < src.size() && src[i] == quote) ++i;
        push(quote == '"' ? Tok::String : Tok::CharLit, begin, line);
        continue;
      }
      push(Tok::Identifier, begin, line);
      continue;
    }

    // Number (handles digit separators: 1'000'000, hex, exponents).
    if (detail::digit(c) || (c == '.' && detail::digit(peek(1)))) {
      const std::size_t begin = i;
      ++i;
      while (i < src.size()) {
        const char n = src[i];
        if (detail::ident_char(n) || n == '.') {
          ++i;
          continue;
        }
        if (n == '\'' && detail::ident_char(peek(1))) {
          i += 2;  // digit separator
          continue;
        }
        if ((n == '+' || n == '-') &&
            (src[i - 1] == 'e' || src[i - 1] == 'E' || src[i - 1] == 'p' ||
             src[i - 1] == 'P')) {
          ++i;  // signed exponent
          continue;
        }
        break;
      }
      push(Tok::Number, begin, line);
      continue;
    }

    // Ordinary string / char literal (single line; an unterminated
    // literal ends at the newline so one bad line cannot poison the file).
    if (c == '"' || c == '\'') {
      const std::size_t begin = i;
      const char quote = c;
      ++i;
      while (i < src.size() && src[i] != quote && src[i] != '\n') {
        if (src[i] == '\\' && i + 1 < src.size() && src[i + 1] != '\n') ++i;
        ++i;
      }
      if (i < src.size() && src[i] == quote) ++i;
      push(quote == '"' ? Tok::String : Tok::CharLit, begin, line);
      continue;
    }

    // Punctuation: keep "::" and "->" whole (rules match on them), emit
    // everything else one char at a time ('>' stays single so template
    // argument depth counting is uniform).
    {
      const std::size_t begin = i;
      if ((c == ':' && peek(1) == ':') || (c == '-' && peek(1) == '>'))
        i += 2;
      else
        ++i;
      push(Tok::Punct, begin, line);
      continue;
    }
  }
  return out;
}

}  // namespace nbuf::lint
