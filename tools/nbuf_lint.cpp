// nbuf_lint — dependency-free project linter, wired into ctest.
//
//   nbuf_lint <repo-root>
//
// Walks src/, tools/ and bench/ and enforces the project's mechanical
// style and determinism contracts that neither the compiler nor
// clang-tidy expresses. The rules, their rationale, and the suppression
// policy live in tools/lint/rules.hpp and docs/quality.md; the token
// stream they match over comes from tools/lint/lexer.hpp (v2 — the
// per-line regex scanner could not see raw strings or multi-line
// literals, and honored suppression markers inside string literals).
//
// A finding on one line is suppressed by a marker in a comment that
// starts on that line:
//
//   std::sort(v.begin(), v.end());  // nbuf-lint: allow(sort)
//
// Exit status: 0 when clean, 1 with findings (one "file:line: rule:
// message" diagnostic per finding), 2 on usage errors.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/rules.hpp"

namespace {

namespace fs = std::filesystem;

bool read_file(const fs::path& p, std::string& out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <repo-root>\n", argv[0]);
    return 2;
  }
  const fs::path root = argv[1];
  if (!fs::is_directory(root)) {
    std::fprintf(stderr, "%s: not a directory\n", argv[1]);
    return 2;
  }

  std::vector<nbuf::lint::Finding> findings;
  std::size_t files = 0;
  for (const char* top : {"src", "tools", "bench"}) {
    const fs::path dir = root / top;
    if (!fs::is_directory(dir)) continue;
    for (const fs::directory_entry& e :
         fs::recursive_directory_iterator(dir)) {
      if (!e.is_regular_file()) continue;
      const fs::path ext = e.path().extension();
      if (ext != ".cpp" && ext != ".hpp") continue;
      ++files;
      nbuf::lint::FileInput in;
      in.rel_path = fs::relative(e.path(), root).generic_string();
      if (!read_file(e.path(), in.content)) {
        findings.push_back({in.rel_path, 0, "io", "cannot open file"});
        continue;
      }
      if (ext == ".cpp") {
        // The sibling header's declarations are visible to this
        // translation unit; unordered-iter tracks its members too.
        fs::path header = e.path();
        header.replace_extension(".hpp");
        if (fs::is_regular_file(header))
          (void)read_file(header, in.header_content);
      }
      std::vector<nbuf::lint::Finding> f = nbuf::lint::lint_file(in);
      findings.insert(findings.end(), f.begin(), f.end());
    }
  }

  for (const nbuf::lint::Finding& f : findings)
    std::fprintf(stderr, "%s:%zu: %s: %s\n", f.file.c_str(), f.line,
                 f.rule.c_str(), f.message.c_str());
  std::printf("nbuf_lint: %zu file(s), %zu finding(s)\n", files,
              findings.size());
  return findings.empty() ? 0 : 1;
}
