// nbuf_lint — dependency-free project linter, wired into ctest.
//
//   nbuf_lint <repo-root>
//
// Walks src/, tools/ and bench/ and enforces the project's mechanical
// style contracts that neither the compiler nor clang-tidy expresses:
//
//   sort         std::sort in src/ outside the reference kernel
//                (src/core/vanginneken.cpp keeps the paper's per-prune
//                sort as the oracle; everywhere else sorting is a
//                deliberate, documented act — docs/quality.md)
//   naked-new    whole-word `new` / `delete` expressions in src/ —
//                ownership lives in containers and value types
//   iostream     #include <iostream> in library code (src/) — the
//                libraries must not drag in static iostream initializers;
//                printing belongs to tools/ and bench/
//   pragma-once  every header under src/, tools/, bench/ must contain
//                #pragma once
//   no-float     whole-word `float` in noise/delay math (src/noise,
//                src/elmore, src/core, src/sim) — all electrical
//                arithmetic is double; a stray float silently halves
//                the precision of every slack downstream
//
// A finding on one line is suppressed by a trailing marker on that line:
//
//   std::sort(v.begin(), v.end());  // nbuf-lint: allow(sort)
//
// Exit status: 0 when clean, 1 with findings (one "file:line: rule:
// message" diagnostic per finding), 2 on usage errors.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string file;
  std::size_t line;
  const char* rule;
  std::string message;
};

// Replaces comments and string/character literals with spaces so the code
// rules never fire on prose or quoted text. Tracks /* */ state across
// lines via `in_block`.
std::string strip_noise(const std::string& line, bool& in_block) {
  std::string out;
  out.reserve(line.size());
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (in_block) {
      if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
        in_block = false;
        ++i;
      }
      out.push_back(' ');
      continue;
    }
    const char c = line[i];
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
      in_block = true;
      out.push_back(' ');
      ++i;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      out.push_back(' ');
      for (++i; i < line.size(); ++i) {
        if (line[i] == '\\') {
          ++i;
          out.push_back(' ');
          if (i < line.size()) out.push_back(' ');
          continue;
        }
        if (line[i] == quote) break;
        out.push_back(' ');
      }
      continue;
    }
    out.push_back(c);
  }
  return out;
}

bool is_word_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

// First whole-word occurrence of `word` in `code`, or npos.
std::size_t find_word(const std::string& code, const char* word) {
  const std::size_t n = std::strlen(word);
  for (std::size_t pos = code.find(word); pos != std::string::npos;
       pos = code.find(word, pos + 1)) {
    const bool left_ok = pos == 0 || !is_word_char(code[pos - 1]);
    const bool right_ok =
        pos + n >= code.size() || !is_word_char(code[pos + n]);
    if (left_ok && right_ok) return pos;
  }
  return std::string::npos;
}

// True when the line carries `// nbuf-lint: allow(<rule>)` for this rule.
bool suppressed(const std::string& raw_line, const char* rule) {
  const std::string marker =
      std::string("nbuf-lint: allow(") + rule + ")";
  return raw_line.find(marker) != std::string::npos;
}

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

void lint_file(const fs::path& abs, const std::string& rel,
               std::vector<Finding>& findings) {
  std::ifstream in(abs);
  if (!in) {
    findings.push_back({rel, 0, "io", "cannot open file"});
    return;
  }
  const bool is_header = abs.extension() == ".hpp";
  const bool in_src = starts_with(rel, "src/");
  const bool in_numeric_src =
      starts_with(rel, "src/noise/") || starts_with(rel, "src/elmore/") ||
      starts_with(rel, "src/core/") || starts_with(rel, "src/sim/");
  // The reference kernel keeps the paper's sort-based prune as the oracle
  // the fast kernel is differential-tested against.
  const bool sort_whitelisted = rel == "src/core/vanginneken.cpp";

  bool has_pragma_once = false;
  bool in_block_comment = false;
  std::string raw;
  std::size_t lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    if (raw.find("#pragma once") != std::string::npos)
      has_pragma_once = true;
    const std::string code = strip_noise(raw, in_block_comment);

    if (in_src && !sort_whitelisted &&
        code.find("std::sort(") != std::string::npos &&
        !suppressed(raw, "sort"))
      findings.push_back(
          {rel, lineno, "sort",
           "std::sort outside the reference kernel; keep lists sorted "
           "incrementally or annotate why a full sort is required"});

    if (in_src && find_word(code, "new") != std::string::npos &&
        !suppressed(raw, "naked-new"))
      findings.push_back({rel, lineno, "naked-new",
                          "naked new in library code; use containers or "
                          "value semantics"});

    if (in_src) {
      const std::size_t pos = find_word(code, "delete");
      // `= delete;` (deleted special member) is fine; a delete-expression
      // is not.
      if (pos != std::string::npos && !suppressed(raw, "naked-new")) {
        std::size_t prev = pos;
        while (prev > 0 && code[prev - 1] == ' ') --prev;
        if (prev == 0 || code[prev - 1] != '=')
          findings.push_back({rel, lineno, "naked-new",
                              "naked delete in library code; ownership "
                              "belongs to containers or value types"});
      }
    }

    if (in_src && code.find("#include") != std::string::npos &&
        code.find("<iostream>") != std::string::npos &&
        !suppressed(raw, "iostream"))
      findings.push_back({rel, lineno, "iostream",
                          "<iostream> in library code; printing belongs "
                          "to tools/ and bench/"});

    if (in_numeric_src && find_word(code, "float") != std::string::npos &&
        !suppressed(raw, "no-float"))
      findings.push_back({rel, lineno, "no-float",
                          "float in noise/delay math; all electrical "
                          "arithmetic must be double"});
  }
  if (is_header && !has_pragma_once)
    findings.push_back(
        {rel, 1, "pragma-once", "header is missing #pragma once"});
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <repo-root>\n", argv[0]);
    return 2;
  }
  const fs::path root = argv[1];
  if (!fs::is_directory(root)) {
    std::fprintf(stderr, "%s: not a directory\n", argv[1]);
    return 2;
  }

  std::vector<Finding> findings;
  std::size_t files = 0;
  for (const char* top : {"src", "tools", "bench"}) {
    const fs::path dir = root / top;
    if (!fs::is_directory(dir)) continue;
    for (const fs::directory_entry& e :
         fs::recursive_directory_iterator(dir)) {
      if (!e.is_regular_file()) continue;
      const fs::path ext = e.path().extension();
      if (ext != ".cpp" && ext != ".hpp") continue;
      ++files;
      const std::string rel =
          fs::relative(e.path(), root).generic_string();
      lint_file(e.path(), rel, findings);
    }
  }

  for (const Finding& f : findings)
    std::fprintf(stderr, "%s:%zu: %s: %s\n", f.file.c_str(), f.line,
                 f.rule, f.message.c_str());
  std::printf("nbuf_lint: %zu file(s), %zu finding(s)\n", files,
              findings.size());
  return findings.empty() ? 0 : 1;
}
