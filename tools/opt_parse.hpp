// Shared numeric-option parsing for the command-line front ends.
//
// std::stoul would silently wrap "--netgen -5" into a huge count and
// std::stod would terminate the process on "--segment abc"; every numeric
// option of nbuf_cli and nbuf_serve goes through these helpers instead, so
// a bad value is a usage error (exit 2) with a message naming the option,
// never a wrap or an abort.
#pragma once

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace nbuf::cli {

inline bool parse_count(const char* v, const char* what, std::size_t& out) {
  if (v != nullptr && std::isdigit(static_cast<unsigned char>(*v))) {
    errno = 0;
    char* end = nullptr;
    const unsigned long long n = std::strtoull(v, &end, 10);
    if (errno != ERANGE && end != nullptr && *end == '\0') {
      out = static_cast<std::size_t>(n);
      return true;
    }
  }
  std::fprintf(stderr, "%s needs a nonnegative integer, got '%s'\n", what,
               v == nullptr ? "" : v);
  return false;
}

inline bool parse_count64(const char* v, const char* what,
                          std::uint64_t& out) {
  std::size_t n = 0;
  if (!parse_count(v, what, n)) return false;
  out = n;
  return true;
}

inline bool parse_number(const char* v, const char* what, double& out) {
  if (v != nullptr && *v != '\0') {
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(v, &end);
    if (errno != ERANGE && end != nullptr && *end == '\0' &&
        std::isfinite(d)) {
      out = d;
      return true;
    }
  }
  std::fprintf(stderr, "%s needs a finite number, got '%s'\n", what,
               v == nullptr ? "" : v);
  return false;
}

// TCP ports fit u16; "--port 70000" must be a usage error, not a wrap.
inline bool parse_port(const char* v, const char* what, std::uint16_t& out) {
  std::size_t n = 0;
  if (!parse_count(v, what, n)) return false;
  if (n > 65535) {
    std::fprintf(stderr, "%s must be <= 65535, got '%s'\n", what, v);
    return false;
  }
  out = static_cast<std::uint16_t>(n);
  return true;
}

}  // namespace nbuf::cli
