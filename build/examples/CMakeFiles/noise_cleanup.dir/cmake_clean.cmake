file(REMOVE_RECURSE
  "CMakeFiles/noise_cleanup.dir/noise_cleanup.cpp.o"
  "CMakeFiles/noise_cleanup.dir/noise_cleanup.cpp.o.d"
  "noise_cleanup"
  "noise_cleanup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noise_cleanup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
