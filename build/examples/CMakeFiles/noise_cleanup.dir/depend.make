# Empty dependencies file for noise_cleanup.
# This may be replaced when dependencies are built.
