file(REMOVE_RECURSE
  "CMakeFiles/bidirectional_bus.dir/bidirectional_bus.cpp.o"
  "CMakeFiles/bidirectional_bus.dir/bidirectional_bus.cpp.o.d"
  "bidirectional_bus"
  "bidirectional_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bidirectional_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
