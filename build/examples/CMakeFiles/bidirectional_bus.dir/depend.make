# Empty dependencies file for bidirectional_bus.
# This may be replaced when dependencies are built.
