file(REMOVE_RECURSE
  "CMakeFiles/incremental_whatif.dir/incremental_whatif.cpp.o"
  "CMakeFiles/incremental_whatif.dir/incremental_whatif.cpp.o.d"
  "incremental_whatif"
  "incremental_whatif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_whatif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
