# Empty dependencies file for incremental_whatif.
# This may be replaced when dependencies are built.
