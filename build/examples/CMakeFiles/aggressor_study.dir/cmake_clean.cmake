file(REMOVE_RECURSE
  "CMakeFiles/aggressor_study.dir/aggressor_study.cpp.o"
  "CMakeFiles/aggressor_study.dir/aggressor_study.cpp.o.d"
  "aggressor_study"
  "aggressor_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggressor_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
