# Empty compiler generated dependencies file for aggressor_study.
# This may be replaced when dependencies are built.
