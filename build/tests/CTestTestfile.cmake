# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_rct[1]_include.cmake")
include("/root/repo/build/tests/test_lib[1]_include.cmake")
include("/root/repo/build/tests/test_elmore[1]_include.cmake")
include("/root/repo/build/tests/test_noise[1]_include.cmake")
include("/root/repo/build/tests/test_theory[1]_include.cmake")
include("/root/repo/build/tests/test_seg[1]_include.cmake")
include("/root/repo/build/tests/test_steiner[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_alg1[1]_include.cmake")
include("/root/repo/build/tests/test_alg2[1]_include.cmake")
include("/root/repo/build/tests/test_vanginneken[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_incremental[1]_include.cmake")
include("/root/repo/build/tests/test_slew[1]_include.cmake")
include("/root/repo/build/tests/test_pulse[1]_include.cmake")
include("/root/repo/build/tests/test_multisource[1]_include.cmake")
include("/root/repo/build/tests/test_moments[1]_include.cmake")
include("/root/repo/build/tests/test_wiresizing[1]_include.cmake")
include("/root/repo/build/tests/test_netgen[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
