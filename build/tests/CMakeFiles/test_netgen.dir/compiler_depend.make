# Empty compiler generated dependencies file for test_netgen.
# This may be replaced when dependencies are built.
