# Empty dependencies file for test_alg2.
# This may be replaced when dependencies are built.
