# Empty dependencies file for test_steiner.
# This may be replaced when dependencies are built.
