file(REMOVE_RECURSE
  "CMakeFiles/test_vanginneken.dir/test_vanginneken.cpp.o"
  "CMakeFiles/test_vanginneken.dir/test_vanginneken.cpp.o.d"
  "test_vanginneken"
  "test_vanginneken.pdb"
  "test_vanginneken[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vanginneken.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
