# Empty dependencies file for test_vanginneken.
# This may be replaced when dependencies are built.
