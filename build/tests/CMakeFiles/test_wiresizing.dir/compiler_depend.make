# Empty compiler generated dependencies file for test_wiresizing.
# This may be replaced when dependencies are built.
