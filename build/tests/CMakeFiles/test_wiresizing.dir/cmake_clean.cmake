file(REMOVE_RECURSE
  "CMakeFiles/test_wiresizing.dir/test_wiresizing.cpp.o"
  "CMakeFiles/test_wiresizing.dir/test_wiresizing.cpp.o.d"
  "test_wiresizing"
  "test_wiresizing.pdb"
  "test_wiresizing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wiresizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
