file(REMOVE_RECURSE
  "CMakeFiles/test_slew.dir/test_slew.cpp.o"
  "CMakeFiles/test_slew.dir/test_slew.cpp.o.d"
  "test_slew"
  "test_slew.pdb"
  "test_slew[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_slew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
