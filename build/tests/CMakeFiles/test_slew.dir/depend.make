# Empty dependencies file for test_slew.
# This may be replaced when dependencies are built.
