# Empty compiler generated dependencies file for test_multisource.
# This may be replaced when dependencies are built.
