file(REMOVE_RECURSE
  "CMakeFiles/test_multisource.dir/test_multisource.cpp.o"
  "CMakeFiles/test_multisource.dir/test_multisource.cpp.o.d"
  "test_multisource"
  "test_multisource.pdb"
  "test_multisource[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multisource.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
