# Empty compiler generated dependencies file for test_rct.
# This may be replaced when dependencies are built.
