file(REMOVE_RECURSE
  "CMakeFiles/test_rct.dir/test_rct.cpp.o"
  "CMakeFiles/test_rct.dir/test_rct.cpp.o.d"
  "test_rct"
  "test_rct.pdb"
  "test_rct[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
