file(REMOVE_RECURSE
  "CMakeFiles/test_alg1.dir/test_alg1.cpp.o"
  "CMakeFiles/test_alg1.dir/test_alg1.cpp.o.d"
  "test_alg1"
  "test_alg1.pdb"
  "test_alg1[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alg1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
