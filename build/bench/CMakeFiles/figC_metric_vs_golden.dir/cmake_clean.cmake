file(REMOVE_RECURSE
  "CMakeFiles/figC_metric_vs_golden.dir/figC_metric_vs_golden.cpp.o"
  "CMakeFiles/figC_metric_vs_golden.dir/figC_metric_vs_golden.cpp.o.d"
  "figC_metric_vs_golden"
  "figC_metric_vs_golden.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figC_metric_vs_golden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
