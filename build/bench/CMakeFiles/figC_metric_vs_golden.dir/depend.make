# Empty dependencies file for figC_metric_vs_golden.
# This may be replaced when dependencies are built.
