file(REMOVE_RECURSE
  "CMakeFiles/figG_pulse_width.dir/figG_pulse_width.cpp.o"
  "CMakeFiles/figG_pulse_width.dir/figG_pulse_width.cpp.o.d"
  "figG_pulse_width"
  "figG_pulse_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figG_pulse_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
