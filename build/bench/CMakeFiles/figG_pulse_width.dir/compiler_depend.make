# Empty compiler generated dependencies file for figG_pulse_width.
# This may be replaced when dependencies are built.
