# Empty compiler generated dependencies file for ablE_multisource.
# This may be replaced when dependencies are built.
