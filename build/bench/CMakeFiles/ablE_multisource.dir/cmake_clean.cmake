file(REMOVE_RECURSE
  "CMakeFiles/ablE_multisource.dir/ablE_multisource.cpp.o"
  "CMakeFiles/ablE_multisource.dir/ablE_multisource.cpp.o.d"
  "ablE_multisource"
  "ablE_multisource.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablE_multisource.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
