# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for figA_critical_length.
