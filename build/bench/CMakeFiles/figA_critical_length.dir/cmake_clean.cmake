file(REMOVE_RECURSE
  "CMakeFiles/figA_critical_length.dir/figA_critical_length.cpp.o"
  "CMakeFiles/figA_critical_length.dir/figA_critical_length.cpp.o.d"
  "figA_critical_length"
  "figA_critical_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figA_critical_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
