
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/figA_critical_length.cpp" "bench/CMakeFiles/figA_critical_length.dir/figA_critical_length.cpp.o" "gcc" "bench/CMakeFiles/figA_critical_length.dir/figA_critical_length.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/nbuf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nbuf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/moments/CMakeFiles/nbuf_moments.dir/DependInfo.cmake"
  "/root/repo/build/src/netgen/CMakeFiles/nbuf_netgen.dir/DependInfo.cmake"
  "/root/repo/build/src/steiner/CMakeFiles/nbuf_steiner.dir/DependInfo.cmake"
  "/root/repo/build/src/noise/CMakeFiles/nbuf_noise.dir/DependInfo.cmake"
  "/root/repo/build/src/elmore/CMakeFiles/nbuf_elmore.dir/DependInfo.cmake"
  "/root/repo/build/src/seg/CMakeFiles/nbuf_seg.dir/DependInfo.cmake"
  "/root/repo/build/src/rct/CMakeFiles/nbuf_rct.dir/DependInfo.cmake"
  "/root/repo/build/src/lib/CMakeFiles/nbuf_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nbuf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
