# Empty dependencies file for figA_critical_length.
# This may be replaced when dependencies are built.
