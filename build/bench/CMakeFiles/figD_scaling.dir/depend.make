# Empty dependencies file for figD_scaling.
# This may be replaced when dependencies are built.
