file(REMOVE_RECURSE
  "CMakeFiles/figD_scaling.dir/figD_scaling.cpp.o"
  "CMakeFiles/figD_scaling.dir/figD_scaling.cpp.o.d"
  "figD_scaling"
  "figD_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figD_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
