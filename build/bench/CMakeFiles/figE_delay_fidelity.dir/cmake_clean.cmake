file(REMOVE_RECURSE
  "CMakeFiles/figE_delay_fidelity.dir/figE_delay_fidelity.cpp.o"
  "CMakeFiles/figE_delay_fidelity.dir/figE_delay_fidelity.cpp.o.d"
  "figE_delay_fidelity"
  "figE_delay_fidelity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figE_delay_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
