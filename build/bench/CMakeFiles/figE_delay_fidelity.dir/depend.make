# Empty dependencies file for figE_delay_fidelity.
# This may be replaced when dependencies are built.
