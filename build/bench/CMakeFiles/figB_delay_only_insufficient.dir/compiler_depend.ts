# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for figB_delay_only_insufficient.
