file(REMOVE_RECURSE
  "CMakeFiles/figB_delay_only_insufficient.dir/figB_delay_only_insufficient.cpp.o"
  "CMakeFiles/figB_delay_only_insufficient.dir/figB_delay_only_insufficient.cpp.o.d"
  "figB_delay_only_insufficient"
  "figB_delay_only_insufficient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figB_delay_only_insufficient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
