# Empty dependencies file for figB_delay_only_insufficient.
# This may be replaced when dependencies are built.
