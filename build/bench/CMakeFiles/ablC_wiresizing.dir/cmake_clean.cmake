file(REMOVE_RECURSE
  "CMakeFiles/ablC_wiresizing.dir/ablC_wiresizing.cpp.o"
  "CMakeFiles/ablC_wiresizing.dir/ablC_wiresizing.cpp.o.d"
  "ablC_wiresizing"
  "ablC_wiresizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablC_wiresizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
