# Empty compiler generated dependencies file for ablC_wiresizing.
# This may be replaced when dependencies are built.
