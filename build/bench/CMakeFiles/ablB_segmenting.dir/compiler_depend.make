# Empty compiler generated dependencies file for ablB_segmenting.
# This may be replaced when dependencies are built.
