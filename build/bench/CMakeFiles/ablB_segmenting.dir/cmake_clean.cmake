file(REMOVE_RECURSE
  "CMakeFiles/ablB_segmenting.dir/ablB_segmenting.cpp.o"
  "CMakeFiles/ablB_segmenting.dir/ablB_segmenting.cpp.o.d"
  "ablB_segmenting"
  "ablB_segmenting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablB_segmenting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
