# Empty dependencies file for ablD_slew.
# This may be replaced when dependencies are built.
