file(REMOVE_RECURSE
  "CMakeFiles/ablD_slew.dir/ablD_slew.cpp.o"
  "CMakeFiles/ablD_slew.dir/ablD_slew.cpp.o.d"
  "ablD_slew"
  "ablD_slew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablD_slew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
