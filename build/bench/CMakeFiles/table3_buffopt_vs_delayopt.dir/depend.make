# Empty dependencies file for table3_buffopt_vs_delayopt.
# This may be replaced when dependencies are built.
