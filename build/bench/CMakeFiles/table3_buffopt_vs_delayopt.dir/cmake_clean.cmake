file(REMOVE_RECURSE
  "CMakeFiles/table3_buffopt_vs_delayopt.dir/table3_buffopt_vs_delayopt.cpp.o"
  "CMakeFiles/table3_buffopt_vs_delayopt.dir/table3_buffopt_vs_delayopt.cpp.o.d"
  "table3_buffopt_vs_delayopt"
  "table3_buffopt_vs_delayopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_buffopt_vs_delayopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
