# Empty dependencies file for figF_aggressor_model.
# This may be replaced when dependencies are built.
