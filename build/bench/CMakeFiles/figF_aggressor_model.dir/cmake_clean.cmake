file(REMOVE_RECURSE
  "CMakeFiles/figF_aggressor_model.dir/figF_aggressor_model.cpp.o"
  "CMakeFiles/figF_aggressor_model.dir/figF_aggressor_model.cpp.o.d"
  "figF_aggressor_model"
  "figF_aggressor_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figF_aggressor_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
