# Empty dependencies file for ablA_pruning.
# This may be replaced when dependencies are built.
