file(REMOVE_RECURSE
  "CMakeFiles/ablA_pruning.dir/ablA_pruning.cpp.o"
  "CMakeFiles/ablA_pruning.dir/ablA_pruning.cpp.o.d"
  "ablA_pruning"
  "ablA_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablA_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
