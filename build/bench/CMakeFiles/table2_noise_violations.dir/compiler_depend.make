# Empty compiler generated dependencies file for table2_noise_violations.
# This may be replaced when dependencies are built.
