file(REMOVE_RECURSE
  "CMakeFiles/table2_noise_violations.dir/table2_noise_violations.cpp.o"
  "CMakeFiles/table2_noise_violations.dir/table2_noise_violations.cpp.o.d"
  "table2_noise_violations"
  "table2_noise_violations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_noise_violations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
