file(REMOVE_RECURSE
  "CMakeFiles/table1_sink_distribution.dir/table1_sink_distribution.cpp.o"
  "CMakeFiles/table1_sink_distribution.dir/table1_sink_distribution.cpp.o.d"
  "table1_sink_distribution"
  "table1_sink_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_sink_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
