# Empty dependencies file for table1_sink_distribution.
# This may be replaced when dependencies are built.
