file(REMOVE_RECURSE
  "CMakeFiles/table4_delay_penalty.dir/table4_delay_penalty.cpp.o"
  "CMakeFiles/table4_delay_penalty.dir/table4_delay_penalty.cpp.o.d"
  "table4_delay_penalty"
  "table4_delay_penalty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_delay_penalty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
