# Empty compiler generated dependencies file for table4_delay_penalty.
# This may be replaced when dependencies are built.
