# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_buffopt_long_two_pin "/root/repo/build/tools/nbuf_cli" "/root/repo/examples/nets/long_two_pin.net" "--golden" "-o" "/root/repo/build/cli_out.net")
set_tests_properties(cli_buffopt_long_two_pin PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_reanalyze_own_output "/root/repo/build/tools/nbuf_cli" "/root/repo/build/cli_out.net" "--mode" "analyze" "--golden")
set_tests_properties(cli_reanalyze_own_output PROPERTIES  DEPENDS "cli_buffopt_long_two_pin" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_alg2_control_tree "/root/repo/build/tools/nbuf_cli" "/root/repo/examples/nets/control_tree.net" "--mode" "noise")
set_tests_properties(cli_alg2_control_tree PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_analyze_explicit_wires "/root/repo/build/tools/nbuf_cli" "/root/repo/examples/nets/explicit_wires.net" "--mode" "analyze")
set_tests_properties(cli_analyze_explicit_wires PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;22;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_delayopt_with_sizing "/root/repo/build/tools/nbuf_cli" "/root/repo/examples/nets/long_two_pin.net" "--mode" "delayopt" "--max-buffers" "3" "--wire-sizing")
set_tests_properties(cli_delayopt_with_sizing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;25;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rejects_bad_file "/root/repo/build/tools/nbuf_cli" "/root/repo/DESIGN.md")
set_tests_properties(cli_rejects_bad_file PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;28;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage_on_no_args "/root/repo/build/tools/nbuf_cli")
set_tests_properties(cli_usage_on_no_args PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;31;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(gen_exports_workload "/root/repo/build/tools/nbuf_gen" "/root/repo/build/gen_out" "--count" "5" "--seed" "11")
set_tests_properties(gen_exports_workload PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;33;add_test;/root/repo/tools/CMakeLists.txt;0;")
