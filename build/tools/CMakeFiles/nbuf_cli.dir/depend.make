# Empty dependencies file for nbuf_cli.
# This may be replaced when dependencies are built.
