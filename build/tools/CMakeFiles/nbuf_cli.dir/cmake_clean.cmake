file(REMOVE_RECURSE
  "CMakeFiles/nbuf_cli.dir/nbuf_cli.cpp.o"
  "CMakeFiles/nbuf_cli.dir/nbuf_cli.cpp.o.d"
  "nbuf_cli"
  "nbuf_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbuf_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
