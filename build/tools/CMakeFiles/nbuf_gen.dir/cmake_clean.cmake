file(REMOVE_RECURSE
  "CMakeFiles/nbuf_gen.dir/nbuf_gen.cpp.o"
  "CMakeFiles/nbuf_gen.dir/nbuf_gen.cpp.o.d"
  "nbuf_gen"
  "nbuf_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbuf_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
