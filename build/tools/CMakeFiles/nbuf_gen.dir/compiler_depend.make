# Empty compiler generated dependencies file for nbuf_gen.
# This may be replaced when dependencies are built.
