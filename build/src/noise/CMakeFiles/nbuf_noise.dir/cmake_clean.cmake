file(REMOVE_RECURSE
  "CMakeFiles/nbuf_noise.dir/coupling.cpp.o"
  "CMakeFiles/nbuf_noise.dir/coupling.cpp.o.d"
  "CMakeFiles/nbuf_noise.dir/devgan.cpp.o"
  "CMakeFiles/nbuf_noise.dir/devgan.cpp.o.d"
  "CMakeFiles/nbuf_noise.dir/incremental.cpp.o"
  "CMakeFiles/nbuf_noise.dir/incremental.cpp.o.d"
  "CMakeFiles/nbuf_noise.dir/pulse.cpp.o"
  "CMakeFiles/nbuf_noise.dir/pulse.cpp.o.d"
  "libnbuf_noise.a"
  "libnbuf_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbuf_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
