# Empty dependencies file for nbuf_noise.
# This may be replaced when dependencies are built.
