
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/noise/coupling.cpp" "src/noise/CMakeFiles/nbuf_noise.dir/coupling.cpp.o" "gcc" "src/noise/CMakeFiles/nbuf_noise.dir/coupling.cpp.o.d"
  "/root/repo/src/noise/devgan.cpp" "src/noise/CMakeFiles/nbuf_noise.dir/devgan.cpp.o" "gcc" "src/noise/CMakeFiles/nbuf_noise.dir/devgan.cpp.o.d"
  "/root/repo/src/noise/incremental.cpp" "src/noise/CMakeFiles/nbuf_noise.dir/incremental.cpp.o" "gcc" "src/noise/CMakeFiles/nbuf_noise.dir/incremental.cpp.o.d"
  "/root/repo/src/noise/pulse.cpp" "src/noise/CMakeFiles/nbuf_noise.dir/pulse.cpp.o" "gcc" "src/noise/CMakeFiles/nbuf_noise.dir/pulse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rct/CMakeFiles/nbuf_rct.dir/DependInfo.cmake"
  "/root/repo/build/src/elmore/CMakeFiles/nbuf_elmore.dir/DependInfo.cmake"
  "/root/repo/build/src/lib/CMakeFiles/nbuf_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nbuf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
