file(REMOVE_RECURSE
  "libnbuf_noise.a"
)
