file(REMOVE_RECURSE
  "libnbuf_netgen.a"
)
