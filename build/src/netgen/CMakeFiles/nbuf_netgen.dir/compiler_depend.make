# Empty compiler generated dependencies file for nbuf_netgen.
# This may be replaced when dependencies are built.
