file(REMOVE_RECURSE
  "CMakeFiles/nbuf_netgen.dir/netgen.cpp.o"
  "CMakeFiles/nbuf_netgen.dir/netgen.cpp.o.d"
  "libnbuf_netgen.a"
  "libnbuf_netgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbuf_netgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
