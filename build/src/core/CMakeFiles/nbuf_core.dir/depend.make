# Empty dependencies file for nbuf_core.
# This may be replaced when dependencies are built.
