file(REMOVE_RECURSE
  "CMakeFiles/nbuf_core.dir/alg1_single_sink.cpp.o"
  "CMakeFiles/nbuf_core.dir/alg1_single_sink.cpp.o.d"
  "CMakeFiles/nbuf_core.dir/alg2_multi_sink.cpp.o"
  "CMakeFiles/nbuf_core.dir/alg2_multi_sink.cpp.o.d"
  "CMakeFiles/nbuf_core.dir/multisource.cpp.o"
  "CMakeFiles/nbuf_core.dir/multisource.cpp.o.d"
  "CMakeFiles/nbuf_core.dir/plan.cpp.o"
  "CMakeFiles/nbuf_core.dir/plan.cpp.o.d"
  "CMakeFiles/nbuf_core.dir/theory.cpp.o"
  "CMakeFiles/nbuf_core.dir/theory.cpp.o.d"
  "CMakeFiles/nbuf_core.dir/tool.cpp.o"
  "CMakeFiles/nbuf_core.dir/tool.cpp.o.d"
  "CMakeFiles/nbuf_core.dir/vanginneken.cpp.o"
  "CMakeFiles/nbuf_core.dir/vanginneken.cpp.o.d"
  "libnbuf_core.a"
  "libnbuf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbuf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
