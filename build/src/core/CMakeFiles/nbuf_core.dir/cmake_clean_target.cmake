file(REMOVE_RECURSE
  "libnbuf_core.a"
)
