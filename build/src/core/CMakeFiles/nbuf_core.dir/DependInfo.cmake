
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/alg1_single_sink.cpp" "src/core/CMakeFiles/nbuf_core.dir/alg1_single_sink.cpp.o" "gcc" "src/core/CMakeFiles/nbuf_core.dir/alg1_single_sink.cpp.o.d"
  "/root/repo/src/core/alg2_multi_sink.cpp" "src/core/CMakeFiles/nbuf_core.dir/alg2_multi_sink.cpp.o" "gcc" "src/core/CMakeFiles/nbuf_core.dir/alg2_multi_sink.cpp.o.d"
  "/root/repo/src/core/multisource.cpp" "src/core/CMakeFiles/nbuf_core.dir/multisource.cpp.o" "gcc" "src/core/CMakeFiles/nbuf_core.dir/multisource.cpp.o.d"
  "/root/repo/src/core/plan.cpp" "src/core/CMakeFiles/nbuf_core.dir/plan.cpp.o" "gcc" "src/core/CMakeFiles/nbuf_core.dir/plan.cpp.o.d"
  "/root/repo/src/core/theory.cpp" "src/core/CMakeFiles/nbuf_core.dir/theory.cpp.o" "gcc" "src/core/CMakeFiles/nbuf_core.dir/theory.cpp.o.d"
  "/root/repo/src/core/tool.cpp" "src/core/CMakeFiles/nbuf_core.dir/tool.cpp.o" "gcc" "src/core/CMakeFiles/nbuf_core.dir/tool.cpp.o.d"
  "/root/repo/src/core/vanginneken.cpp" "src/core/CMakeFiles/nbuf_core.dir/vanginneken.cpp.o" "gcc" "src/core/CMakeFiles/nbuf_core.dir/vanginneken.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rct/CMakeFiles/nbuf_rct.dir/DependInfo.cmake"
  "/root/repo/build/src/lib/CMakeFiles/nbuf_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/elmore/CMakeFiles/nbuf_elmore.dir/DependInfo.cmake"
  "/root/repo/build/src/noise/CMakeFiles/nbuf_noise.dir/DependInfo.cmake"
  "/root/repo/build/src/seg/CMakeFiles/nbuf_seg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nbuf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
