# Empty dependencies file for nbuf_io.
# This may be replaced when dependencies are built.
