file(REMOVE_RECURSE
  "CMakeFiles/nbuf_io.dir/netfile.cpp.o"
  "CMakeFiles/nbuf_io.dir/netfile.cpp.o.d"
  "libnbuf_io.a"
  "libnbuf_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbuf_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
