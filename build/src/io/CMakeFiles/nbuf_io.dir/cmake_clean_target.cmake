file(REMOVE_RECURSE
  "libnbuf_io.a"
)
