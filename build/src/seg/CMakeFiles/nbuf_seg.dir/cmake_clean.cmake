file(REMOVE_RECURSE
  "CMakeFiles/nbuf_seg.dir/segment.cpp.o"
  "CMakeFiles/nbuf_seg.dir/segment.cpp.o.d"
  "libnbuf_seg.a"
  "libnbuf_seg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbuf_seg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
