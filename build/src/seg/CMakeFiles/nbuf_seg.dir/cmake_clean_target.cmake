file(REMOVE_RECURSE
  "libnbuf_seg.a"
)
