# Empty compiler generated dependencies file for nbuf_seg.
# This may be replaced when dependencies are built.
