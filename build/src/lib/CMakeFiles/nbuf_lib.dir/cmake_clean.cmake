file(REMOVE_RECURSE
  "CMakeFiles/nbuf_lib.dir/buffer.cpp.o"
  "CMakeFiles/nbuf_lib.dir/buffer.cpp.o.d"
  "CMakeFiles/nbuf_lib.dir/technology.cpp.o"
  "CMakeFiles/nbuf_lib.dir/technology.cpp.o.d"
  "CMakeFiles/nbuf_lib.dir/wire.cpp.o"
  "CMakeFiles/nbuf_lib.dir/wire.cpp.o.d"
  "libnbuf_lib.a"
  "libnbuf_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbuf_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
