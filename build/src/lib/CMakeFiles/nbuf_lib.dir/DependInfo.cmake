
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lib/buffer.cpp" "src/lib/CMakeFiles/nbuf_lib.dir/buffer.cpp.o" "gcc" "src/lib/CMakeFiles/nbuf_lib.dir/buffer.cpp.o.d"
  "/root/repo/src/lib/technology.cpp" "src/lib/CMakeFiles/nbuf_lib.dir/technology.cpp.o" "gcc" "src/lib/CMakeFiles/nbuf_lib.dir/technology.cpp.o.d"
  "/root/repo/src/lib/wire.cpp" "src/lib/CMakeFiles/nbuf_lib.dir/wire.cpp.o" "gcc" "src/lib/CMakeFiles/nbuf_lib.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nbuf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
