# Empty dependencies file for nbuf_lib.
# This may be replaced when dependencies are built.
