file(REMOVE_RECURSE
  "libnbuf_lib.a"
)
