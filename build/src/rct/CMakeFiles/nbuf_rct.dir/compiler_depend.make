# Empty compiler generated dependencies file for nbuf_rct.
# This may be replaced when dependencies are built.
