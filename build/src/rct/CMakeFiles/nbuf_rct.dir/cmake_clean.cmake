file(REMOVE_RECURSE
  "CMakeFiles/nbuf_rct.dir/assignment.cpp.o"
  "CMakeFiles/nbuf_rct.dir/assignment.cpp.o.d"
  "CMakeFiles/nbuf_rct.dir/extract.cpp.o"
  "CMakeFiles/nbuf_rct.dir/extract.cpp.o.d"
  "CMakeFiles/nbuf_rct.dir/reroot.cpp.o"
  "CMakeFiles/nbuf_rct.dir/reroot.cpp.o.d"
  "CMakeFiles/nbuf_rct.dir/stage.cpp.o"
  "CMakeFiles/nbuf_rct.dir/stage.cpp.o.d"
  "CMakeFiles/nbuf_rct.dir/tree.cpp.o"
  "CMakeFiles/nbuf_rct.dir/tree.cpp.o.d"
  "libnbuf_rct.a"
  "libnbuf_rct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbuf_rct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
