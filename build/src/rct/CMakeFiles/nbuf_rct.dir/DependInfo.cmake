
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rct/assignment.cpp" "src/rct/CMakeFiles/nbuf_rct.dir/assignment.cpp.o" "gcc" "src/rct/CMakeFiles/nbuf_rct.dir/assignment.cpp.o.d"
  "/root/repo/src/rct/extract.cpp" "src/rct/CMakeFiles/nbuf_rct.dir/extract.cpp.o" "gcc" "src/rct/CMakeFiles/nbuf_rct.dir/extract.cpp.o.d"
  "/root/repo/src/rct/reroot.cpp" "src/rct/CMakeFiles/nbuf_rct.dir/reroot.cpp.o" "gcc" "src/rct/CMakeFiles/nbuf_rct.dir/reroot.cpp.o.d"
  "/root/repo/src/rct/stage.cpp" "src/rct/CMakeFiles/nbuf_rct.dir/stage.cpp.o" "gcc" "src/rct/CMakeFiles/nbuf_rct.dir/stage.cpp.o.d"
  "/root/repo/src/rct/tree.cpp" "src/rct/CMakeFiles/nbuf_rct.dir/tree.cpp.o" "gcc" "src/rct/CMakeFiles/nbuf_rct.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nbuf_util.dir/DependInfo.cmake"
  "/root/repo/build/src/lib/CMakeFiles/nbuf_lib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
