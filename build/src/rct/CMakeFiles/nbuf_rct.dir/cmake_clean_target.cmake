file(REMOVE_RECURSE
  "libnbuf_rct.a"
)
