# CMake generated Testfile for 
# Source directory: /root/repo/src/rct
# Build directory: /root/repo/build/src/rct
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
