file(REMOVE_RECURSE
  "CMakeFiles/nbuf_moments.dir/moments.cpp.o"
  "CMakeFiles/nbuf_moments.dir/moments.cpp.o.d"
  "libnbuf_moments.a"
  "libnbuf_moments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbuf_moments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
