file(REMOVE_RECURSE
  "libnbuf_moments.a"
)
