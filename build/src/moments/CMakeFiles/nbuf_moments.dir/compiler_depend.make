# Empty compiler generated dependencies file for nbuf_moments.
# This may be replaced when dependencies are built.
