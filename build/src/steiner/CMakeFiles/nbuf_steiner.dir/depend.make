# Empty dependencies file for nbuf_steiner.
# This may be replaced when dependencies are built.
