file(REMOVE_RECURSE
  "CMakeFiles/nbuf_steiner.dir/builders.cpp.o"
  "CMakeFiles/nbuf_steiner.dir/builders.cpp.o.d"
  "CMakeFiles/nbuf_steiner.dir/steiner.cpp.o"
  "CMakeFiles/nbuf_steiner.dir/steiner.cpp.o.d"
  "libnbuf_steiner.a"
  "libnbuf_steiner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbuf_steiner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
