file(REMOVE_RECURSE
  "libnbuf_steiner.a"
)
