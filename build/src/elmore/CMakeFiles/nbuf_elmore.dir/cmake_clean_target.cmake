file(REMOVE_RECURSE
  "libnbuf_elmore.a"
)
