# Empty compiler generated dependencies file for nbuf_elmore.
# This may be replaced when dependencies are built.
