file(REMOVE_RECURSE
  "CMakeFiles/nbuf_elmore.dir/elmore.cpp.o"
  "CMakeFiles/nbuf_elmore.dir/elmore.cpp.o.d"
  "CMakeFiles/nbuf_elmore.dir/slew.cpp.o"
  "CMakeFiles/nbuf_elmore.dir/slew.cpp.o.d"
  "libnbuf_elmore.a"
  "libnbuf_elmore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbuf_elmore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
