file(REMOVE_RECURSE
  "CMakeFiles/nbuf_util.dir/stats.cpp.o"
  "CMakeFiles/nbuf_util.dir/stats.cpp.o.d"
  "CMakeFiles/nbuf_util.dir/table.cpp.o"
  "CMakeFiles/nbuf_util.dir/table.cpp.o.d"
  "libnbuf_util.a"
  "libnbuf_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbuf_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
