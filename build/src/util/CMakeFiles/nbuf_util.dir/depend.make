# Empty dependencies file for nbuf_util.
# This may be replaced when dependencies are built.
