file(REMOVE_RECURSE
  "libnbuf_util.a"
)
