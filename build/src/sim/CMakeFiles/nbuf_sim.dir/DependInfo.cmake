
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/delay.cpp" "src/sim/CMakeFiles/nbuf_sim.dir/delay.cpp.o" "gcc" "src/sim/CMakeFiles/nbuf_sim.dir/delay.cpp.o.d"
  "/root/repo/src/sim/dense.cpp" "src/sim/CMakeFiles/nbuf_sim.dir/dense.cpp.o" "gcc" "src/sim/CMakeFiles/nbuf_sim.dir/dense.cpp.o.d"
  "/root/repo/src/sim/golden.cpp" "src/sim/CMakeFiles/nbuf_sim.dir/golden.cpp.o" "gcc" "src/sim/CMakeFiles/nbuf_sim.dir/golden.cpp.o.d"
  "/root/repo/src/sim/stage_circuit.cpp" "src/sim/CMakeFiles/nbuf_sim.dir/stage_circuit.cpp.o" "gcc" "src/sim/CMakeFiles/nbuf_sim.dir/stage_circuit.cpp.o.d"
  "/root/repo/src/sim/tree_solver.cpp" "src/sim/CMakeFiles/nbuf_sim.dir/tree_solver.cpp.o" "gcc" "src/sim/CMakeFiles/nbuf_sim.dir/tree_solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rct/CMakeFiles/nbuf_rct.dir/DependInfo.cmake"
  "/root/repo/build/src/lib/CMakeFiles/nbuf_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nbuf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
