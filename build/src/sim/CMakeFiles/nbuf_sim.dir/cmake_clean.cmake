file(REMOVE_RECURSE
  "CMakeFiles/nbuf_sim.dir/delay.cpp.o"
  "CMakeFiles/nbuf_sim.dir/delay.cpp.o.d"
  "CMakeFiles/nbuf_sim.dir/dense.cpp.o"
  "CMakeFiles/nbuf_sim.dir/dense.cpp.o.d"
  "CMakeFiles/nbuf_sim.dir/golden.cpp.o"
  "CMakeFiles/nbuf_sim.dir/golden.cpp.o.d"
  "CMakeFiles/nbuf_sim.dir/stage_circuit.cpp.o"
  "CMakeFiles/nbuf_sim.dir/stage_circuit.cpp.o.d"
  "CMakeFiles/nbuf_sim.dir/tree_solver.cpp.o"
  "CMakeFiles/nbuf_sim.dir/tree_solver.cpp.o.d"
  "libnbuf_sim.a"
  "libnbuf_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbuf_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
