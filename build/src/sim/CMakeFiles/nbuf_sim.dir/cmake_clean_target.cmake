file(REMOVE_RECURSE
  "libnbuf_sim.a"
)
