# Empty compiler generated dependencies file for nbuf_sim.
# This may be replaced when dependencies are built.
